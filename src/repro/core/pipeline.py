"""End-to-end GitTables corpus construction (paper Figure 1).

:class:`CorpusBuilder` is a thin, backward-compatible wrapper over the
streaming stage graph in :mod:`repro.pipeline`:

    GitHub instance → extraction → parsing → filtering → annotation →
    content curation → :class:`~repro.core.corpus.GitTablesCorpus`

Tables stream through generator-based stages in batches; the run stops
pulling from every upstream stage as soon as ``config.target_tables``
tables have been curated, so no table is annotated only to be discarded.
Builds targeting a ``store_dir`` stream each batch into a sharded
on-disk store (:mod:`repro.storage.sharded`) and are resumable: the
manifest is the commit log, a resume skips every already-annotated
table via the resume-skip stage, and the final
:class:`~repro.pipeline.report.PipelineReport` merges the counters of
every session that contributed.
Every stage still produces its legacy report — all are bundled in the
returned :class:`PipelineResult` together with the unified
:class:`~repro.pipeline.report.PipelineReport` — so experiments can
reproduce the paper's per-stage statistics (parse success rate, filter
rate, PII fraction, …).

New code should prefer the :class:`repro.api.GitTables` facade, which
wraps a built corpus with the paper's applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import os

from ..config import PipelineConfig
from ..errors import CorpusError
from ..github.client import GitHubClient
from ..github.content import GeneratorConfig
from ..github.instance import GitHubInstance, build_instance
from ..pipeline.report import PipelineReport, combine_counters
from ..pipeline.runner import Pipeline
from ..pipeline.stage import StageContext
from ..pipeline.stages import PipelineComponents, default_stages
from ..storage.checkpoint import (
    BuildCheckpoint,
    config_fingerprint,
    load_build_meta,
    require_compatible_build,
    require_compatible_extension,
    save_build_meta,
)
from ..storage.artifacts import IndexArtifactStore
from ..storage.columnar import ensure_projection
from ..storage.sharded import DEFAULT_SHARD_SIZE, ShardedCorpusWriter, ShardedJsonlStore
from ..wordnet.topics import select_topics
from .corpus import GitTablesCorpus
from .curation import CurationReport
from .extraction import CSVExtractor, ExtractionReport
from .filtering import FilterReport
from .parsing import ParsingReport

__all__ = ["PipelineResult", "CorpusBuilder", "build_corpus"]

#: Default number of tables streamed per runner batch.
DEFAULT_BATCH_SIZE = 32


@dataclass
class PipelineResult:
    """The corpus plus per-stage reports.

    The legacy stage reports are *session-scoped*: they describe the work
    the returning process actually performed. For store-backed builds
    that resumed (or reused) a directory, the cross-session truth lives
    in ``pipeline_report`` (counters merged over every session); the
    curation report is additionally rebuilt from corpus metadata on pure
    reuse, since Table-3 statistics are derivable from the tables
    themselves, while extraction/parsing/filter reports describe dropped
    items that no longer exist anywhere.
    """

    corpus: GitTablesCorpus
    extraction_report: ExtractionReport
    parsing_report: ParsingReport
    filter_report: FilterReport
    curation_report: CurationReport
    topics: tuple[str, ...]
    #: Unified per-stage counters/timings of the streaming run.
    pipeline_report: PipelineReport | None = None

    @property
    def table_count(self) -> int:
        return len(self.corpus)


class CorpusBuilder:
    """Builds a GitTables corpus from a (simulated) GitHub instance."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        instance: GitHubInstance | None = None,
        generator_config: GeneratorConfig | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        real_time_factor: float = 0.0,
    ) -> None:
        # PipelineConfig validates itself in __post_init__.
        self.config = config or PipelineConfig.default()
        self.batch_size = batch_size
        #: Converts the simulated GitHub client's virtual request time
        #: into real sleeps (0.0 = pure virtual clock). Benchmarks use
        #: it to model the network-bound production workload.
        self.real_time_factor = real_time_factor
        #: The generator configuration behind the synthetic instance, kept
        #: for the resume fingerprint (None when a pre-built instance was
        #: handed in — such builds cannot be fingerprinted).
        self.generator_config: GeneratorConfig | None = None
        if instance is None:
            self.generator_config = self._derive_generator_config(generator_config)
            instance = build_instance(self.generator_config)
        self.instance = instance
        self.client = GitHubClient(instance, real_time_factor=real_time_factor)
        self.extractor = CSVExtractor(self.client, self.config.extraction)
        #: The per-file processing components, constructed through the
        #: pickle-able factory that parallel worker processes also use.
        self.components = PipelineComponents.from_config(self.config)
        self.parser = self.components.parser
        self.table_filter = self.components.table_filter
        self.annotator = self.components.annotator
        self.curator = self.components.curator

    def _derive_generator_config(self, override: GeneratorConfig | None) -> GeneratorConfig:
        """Size the synthetic GitHub so the target table count is reachable.

        Only ~16% of files come from permissively licensed repositories
        and ~9% of the remainder is filtered, so the instance holds about
        8x the configured target in CSV files.
        """
        if override is not None:
            return override
        target_files = int(self.config.target_tables * 8)
        base = GeneratorConfig(seed=self.config.seed)
        return base.scaled_to_files(target_files)

    def pipeline(
        self,
        skip_source_urls: set[str] | None = None,
        fast_forward_past: str | None = None,
    ) -> Pipeline:
        """The Figure-1 stage graph over this builder's components.

        A fresh graph (with fresh stage reports) per call; callers may
        insert, replace or reorder stages before running it. With
        ``config.workers > 1`` the parsing and annotation stages run as
        chunked thread-pool map stages (order-preserving; may prefetch
        up to ``workers + 1`` chunks past the early-stop limit).
        ``skip_source_urls`` inserts the resume-skip stage used by
        store-targeted builds; ``fast_forward_past`` is the sealed
        store's stream high-water mark for epoch extensions (see
        :class:`~repro.pipeline.stages.ResumeSkipStage`).
        """
        return Pipeline(
            default_stages(
                self.extractor,
                self.parser,
                self.table_filter,
                self.annotator,
                self.curator,
                workers=self.config.workers,
                chunk_size=self.batch_size,
                skip_source_urls=skip_source_urls,
                fast_forward_past=fast_forward_past,
            ),
            batch_size=self.batch_size,
            name="gittables-build",
        )

    def build(
        self,
        store_dir: str | os.PathLike[str] | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        processes: int | None = None,
        extend: bool = False,
    ) -> PipelineResult:
        """Run the full streaming pipeline and return corpus plus reports.

        Without ``store_dir`` the corpus is assembled in memory (the
        historical behaviour). With ``store_dir`` the build streams
        straight into a sharded on-disk store and is **resumable**: every
        runner batch is committed to the shard files and manifest before
        the next is pulled, so a killed build restarted with the same
        configuration picks up from the manifest, skips every table it
        already annotated, and produces a directory byte-identical to an
        uninterrupted run. The returned corpus is backed by the lazy
        sharded reader, not resident in memory.

        ``processes`` (default: ``config.processes``) fans a store
        build out across worker processes, each searching, downloading
        and annotating a disjoint slice of the source-URL stream into
        its own shard files, merged on commit boundaries and finalized
        byte-identically to a serial build — see
        :class:`repro.storage.parallel.ParallelCorpusBuilder`. A build
        may be killed under one process count and resumed under another
        (the count is excluded from the config fingerprint). In-memory
        builds ignore ``processes``.

        ``extend=True`` reopens a *completed* store under a grown
        configuration (larger ``target_tables`` and/or
        ``extraction.topic_count``; everything else — seed, stage
        settings, generator — must match the original build). The
        committed corpus becomes the new epoch's prefix and only the
        missing tables are searched, annotated and appended, so growing
        a corpus costs O(new tables), not O(corpus). When only
        ``target_tables`` grew, the extended directory finalizes
        byte-identical (modulo the manifest epoch trailer) to a
        from-scratch build of the larger target with the same explicit
        ``generator_config``.
        """
        if processes is None:
            processes = self.config.processes
        if processes < 1:
            raise CorpusError("processes must be >= 1")
        if store_dir is not None:
            from ..storage.parallel import ParallelCorpusBuilder, has_parallel_state

            # A directory holding in-flight parallel state (worker
            # shards/logs) must resume through the coordinator even at
            # processes=1 — the single-writer path cannot append to
            # worker-scoped shards. Either path finalizes the same bytes.
            if processes > 1 or has_parallel_state(store_dir):
                return ParallelCorpusBuilder(self, processes=processes).build(
                    store_dir, shard_size=shard_size, extend=extend
                )
            return self._build_to_store(store_dir, shard_size, extend=extend)
        if extend:
            raise CorpusError("extend=True requires a store_dir to reopen")
        topic_selection = select_topics(
            self.config.extraction.topic_count, seed=self.config.seed
        )
        corpus = GitTablesCorpus()

        def collect(batch: list) -> None:
            for annotated in batch:
                corpus.add(annotated)

        outcome = self.pipeline().run(
            topic_selection.topics,
            config=self.config,
            limit=self.config.target_tables,
            sink=collect,
        )
        return self._result(corpus, outcome.report, topic_selection.topics)

    def _result(
        self, corpus: GitTablesCorpus, report: PipelineReport, topics: tuple[str, ...]
    ) -> PipelineResult:
        reports = report.stage_reports
        return PipelineResult(
            corpus=corpus,
            extraction_report=reports.get("extraction", ExtractionReport()),
            parsing_report=reports.get("parsing", ParsingReport()),
            filter_report=reports.get("filtering", FilterReport()),
            curation_report=reports.get("curation", CurationReport()),
            topics=topics,
            pipeline_report=report,
        )

    def ensure_build_meta(
        self,
        store_dir: str | os.PathLike[str],
        fingerprint: dict,
        committed_count: int,
        extend: bool = False,
    ) -> None:
        """Validate (or create) the directory's permanent provenance record.

        ``build.json`` pins the configuration a store was started with:
        any build call against an existing store — in-flight or
        completed, serial or parallel — must match it. Shared by the
        single-process and process-parallel build paths so both enforce
        identical provenance rules.

        With ``extend=True`` a *compatible growth* of the configuration
        is accepted instead of exact equality (see
        :func:`~repro.storage.checkpoint.require_compatible_extension`),
        and ``build.json`` is re-pinned to the grown fingerprint — from
        then on the directory belongs to the extended configuration, and
        a crashed extension resumes against the new record.
        """
        stored_fingerprint = load_build_meta(store_dir)
        if stored_fingerprint is not None:
            if stored_fingerprint.get("generator") is None or self.generator_config is None:
                # A pre-built `instance` cannot be fingerprinted, so two
                # different sources would compare equal — refuse to mix.
                raise CorpusError(
                    f"corpus at {store_dir} involves a pre-built GitHub instance "
                    "whose data source cannot be verified; such builds are not "
                    "resumable or reusable — delete the directory to rebuild"
                )
            if extend:
                require_compatible_extension(stored_fingerprint, fingerprint, store_dir)
                save_build_meta(store_dir, fingerprint)
            else:
                require_compatible_build(stored_fingerprint, fingerprint, store_dir)
        elif extend:
            raise CorpusError(
                f"cannot extend corpus at {store_dir}: the directory holds no "
                "build metadata to grow from"
            )
        elif committed_count > 0:
            raise CorpusError(
                f"corpus at {store_dir} holds {committed_count} tables but "
                "no build metadata, so it cannot be verified against this "
                "configuration; load it explicitly or delete the directory to rebuild"
            )
        else:
            save_build_meta(store_dir, fingerprint)

    def reuse_result(
        self, store_dir: str | os.PathLike[str], topics: tuple[str, ...]
    ) -> PipelineResult:
        """Wrap a completed store without touching manifest or shards.

        Curation statistics are rebuilt from table metadata; the other
        legacy stage reports describe dropped/raw items and only exist
        in the session that did the work (see :class:`PipelineResult`).
        """
        corpus = GitTablesCorpus(store=ShardedJsonlStore(store_dir))
        # Resolve (or build-and-publish) the columnar stats projection:
        # the curation report below — and every later stats call on this
        # corpus — then reads metadata arrays instead of parsing shards.
        ensure_projection(corpus, IndexArtifactStore.for_corpus_dir(store_dir))
        report = PipelineReport(pipeline_name="gittables-build")
        report.items_collected = len(corpus)
        report.stage_reports["curation"] = CurationReport.from_corpus(corpus)
        return self._result(corpus, report, topics)

    def _build_to_store(
        self, store_dir: str | os.PathLike[str], shard_size: int, extend: bool = False
    ) -> PipelineResult:
        """Resumable streaming build into a sharded corpus directory."""
        config = self.config
        topic_selection = select_topics(config.extraction.topic_count, seed=config.seed)
        writer = ShardedCorpusWriter(store_dir, shard_size=shard_size)
        fingerprint = config_fingerprint(config, self.generator_config)
        self.ensure_build_meta(store_dir, fingerprint, writer.committed_count, extend=extend)
        # Persist the ontology label indexes next to the corpus: later
        # sessions (and parallel build workers) of this directory then
        # mmap them instead of re-embedding every ontology label.
        self.annotator.publish_artifacts(IndexArtifactStore.for_corpus_dir(store_dir))

        checkpoint = BuildCheckpoint.load(store_dir)
        if checkpoint is None:
            if writer.committed_count >= config.target_tables:
                # A completed build (its checkpoint was cleared): the
                # fingerprint matched, so reuse it as-is.
                return self.reuse_result(store_dir, topic_selection.topics)
            checkpoint = BuildCheckpoint(fingerprint=fingerprint)
        else:
            checkpoint.require_compatible(fingerprint, store_dir)

        base_counters = checkpoint.counters
        # Persist the fingerprint before any work so even a crash inside
        # the first batch leaves a resumable directory behind.
        checkpoint.save(store_dir)

        ctx = StageContext(config=config)

        def commit_batch(batch: list) -> None:
            writer.extend(batch)
            writer.commit()
            # Recomputed from the immutable base every commit (never
            # compounded); the session count lives in the merged
            # counters, the checkpoint field mirrors it.
            merged = combine_counters(base_counters, ctx.report.counters())
            BuildCheckpoint(
                fingerprint=fingerprint,
                sessions=merged["sessions"],
                counters=merged,
            ).save(store_dir)

        remaining = config.target_tables - writer.committed_count
        if remaining > 0:
            fast_forward_past = None
            run_topics = topic_selection.topics
            if extend:
                if writer.is_sealed:
                    # A sealed manifest lists tables in canonical stream
                    # order, so the extension can fast-forward the
                    # replayed stream past the last committed table
                    # instead of re-parsing every previously rejected
                    # file — the O(new tables) growth path. A crashed
                    # extension reopens unsealed and falls back to the
                    # (order-agnostic) membership skip.
                    fast_forward_past = writer.last_source_url()
                    marker = writer.last_committed_table()
                    if marker is not None and marker.topic in run_topics:
                        # Topics are consumed in order and the high-water
                        # table belongs to the last topic the sealed
                        # build reached, so earlier topics yield only
                        # already-processed files — skip enumerating
                        # (and re-searching) them entirely. Files they
                        # share with later topics were either committed
                        # (dropped by the membership skip) or rejected
                        # (parse/filter are content-deterministic, so
                        # they re-reject identically).
                        run_topics = run_topics[run_topics.index(marker.topic) :]
                # Durably open the next epoch before the first append —
                # deferred to here so an extension whose target is
                # already met reuses the sealed store without bumping.
                writer.begin_extension()
            outcome = self.pipeline(
                skip_source_urls=writer.source_urls(),
                fast_forward_past=fast_forward_past,
            ).run(
                run_topics,
                config=config,
                ctx=ctx,
                limit=remaining,
                sink=commit_batch,
            )
            report = outcome.report
        else:
            report = ctx.report
            report.pipeline_name = "gittables-build"
        # Compact the manifest delta log: a completed directory holds
        # only shard files + manifest.json, byte-identical no matter how
        # many commits or sessions produced it.
        writer.finalize()
        if base_counters:
            report.merge_counters(base_counters)
        # The build is complete: the checkpoint's job is done, and
        # removing it makes a resumed directory byte-identical to a
        # one-shot one.
        BuildCheckpoint.clear(store_dir)
        corpus = GitTablesCorpus(store=ShardedJsonlStore(store_dir))
        # Publish the columnar stats projection at finalize: later
        # sessions (and the curation fallback below) resolve corpus
        # statistics from mmap'd metadata arrays, never re-parsing
        # shards. Best-effort like every artifact publish. Extensions
        # defer pruning: the superseded search/completion artifacts must
        # survive until their engines have delta-refreshed from them
        # (the facade prunes once every artifact is republished).
        ensure_projection(
            corpus, IndexArtifactStore.for_corpus_dir(store_dir), prune=not extend
        )
        if "curation" not in report.stage_reports:
            # The no-work path (target already met, e.g. killed between
            # the last commit and checkpoint clear) ran no curation
            # stage; rebuild its report from corpus metadata like the
            # pure-reuse path does.
            report.stage_reports["curation"] = CurationReport.from_corpus(corpus)
        return self._result(corpus, report, topic_selection.topics)


def build_corpus(
    config: PipelineConfig | None = None,
    instance: GitHubInstance | None = None,
    generator_config: GeneratorConfig | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    store_dir: str | os.PathLike[str] | None = None,
    shard_size: int = DEFAULT_SHARD_SIZE,
    processes: int | None = None,
    extend: bool = False,
) -> PipelineResult:
    """Convenience wrapper: construct a corpus with one call.

    With ``store_dir`` the build streams into a resumable sharded
    on-disk store; ``processes`` > 1 additionally fans the work out
    across worker processes; ``extend=True`` grows a completed store
    incrementally under a larger target (see :meth:`CorpusBuilder.build`).
    """
    return CorpusBuilder(
        config=config,
        instance=instance,
        generator_config=generator_config,
        batch_size=batch_size,
    ).build(store_dir=store_dir, shard_size=shard_size, processes=processes, extend=extend)
