"""Column annotation with semantic types (paper §3.4).

Two annotation methods are provided:

* :class:`SyntacticAnnotator` — normalises the column name (underscores,
  hyphens, camel-case, lower-casing) and matches it *exactly* against the
  normalised labels of the ontology. Matches carry confidence 1.0.
* :class:`SemanticAnnotator` — embeds the normalised column name and
  every ontology type label with a FastText-style character-n-gram model
  and annotates with the most similar type, keeping the cosine similarity
  as the annotation confidence. Annotations below a configurable
  threshold are discarded.

Both methods skip column names containing digits, because experiments in
the paper showed those produce spurious matches against types that
coincidentally contain a number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..config import AnnotationConfig
from ..dataframe.table import Table
from ..embeddings.fasttext import FastTextModel
from ..embeddings.similarity import NearestNeighbourIndex
from ..errors import AnnotationError
from ..ontology.registry import load_ontologies
from ..ontology.types import Ontology, normalize_label

__all__ = [
    "AnnotationMethod",
    "ColumnAnnotation",
    "TableAnnotations",
    "SyntacticAnnotator",
    "SemanticAnnotator",
    "annotate_table",
]


class AnnotationMethod(str, Enum):
    """The annotation method that produced a column annotation."""

    SYNTACTIC = "syntactic"
    SEMANTIC = "semantic"


@dataclass(frozen=True)
class ColumnAnnotation:
    """A single column annotation."""

    column: str
    type_label: str
    ontology: str
    method: AnnotationMethod
    #: Cosine similarity (semantic) or 1.0 (syntactic exact match).
    confidence: float

    def as_tuple(self) -> tuple[str, float]:
        """(type label, confidence) pair used by the PII scrubber."""
        return (self.type_label, self.confidence)


@dataclass
class TableAnnotations:
    """All annotations of one table, grouped by method and ontology."""

    table_id: str
    #: method -> ontology -> list of ColumnAnnotation
    annotations: dict[AnnotationMethod, dict[str, list[ColumnAnnotation]]] = field(
        default_factory=dict
    )

    def add(self, annotation: ColumnAnnotation) -> None:
        per_method = self.annotations.setdefault(annotation.method, {})
        per_method.setdefault(annotation.ontology, []).append(annotation)

    def for_method(self, method: AnnotationMethod, ontology: str | None = None) -> list[ColumnAnnotation]:
        """Annotations of one method, optionally restricted to one ontology."""
        per_method = self.annotations.get(method, {})
        if ontology is not None:
            return list(per_method.get(ontology, []))
        result: list[ColumnAnnotation] = []
        for annotations in per_method.values():
            result.extend(annotations)
        return result

    def all(self) -> list[ColumnAnnotation]:
        """Every annotation across methods and ontologies."""
        result: list[ColumnAnnotation] = []
        for per_method in self.annotations.values():
            for annotations in per_method.values():
                result.extend(annotations)
        return result

    def column_types(
        self, method: AnnotationMethod, ontology: str
    ) -> dict[str, tuple[str, float]]:
        """column name -> (type label, confidence) for one method+ontology."""
        return {
            annotation.column: (annotation.type_label, annotation.confidence)
            for annotation in self.for_method(method, ontology)
        }

    def annotated_column_fraction(self, method: AnnotationMethod, n_columns: int) -> float:
        """Fraction of the table's columns annotated by ``method`` (any ontology)."""
        if n_columns == 0:
            return 0.0
        columns = {annotation.column for annotation in self.for_method(method)}
        return len(columns) / n_columns

    def pii_view(self) -> dict[str, list[tuple[str, float]]]:
        """column -> [(type, confidence), ...] across everything (for the scrubber)."""
        view: dict[str, list[tuple[str, float]]] = {}
        for annotation in self.all():
            view.setdefault(annotation.column, []).append(annotation.as_tuple())
        return view


def _contains_digit(text: str) -> bool:
    return any(char.isdigit() for char in text)


def preprocess_column_name(name: str) -> str:
    """Normalise a column name for matching (paper §3.4)."""
    return normalize_label(name)


class SyntacticAnnotator:
    """Exact-match annotation of normalised column names against an ontology."""

    method = AnnotationMethod.SYNTACTIC

    def __init__(self, ontology: Ontology, skip_numeric_column_names: bool = True) -> None:
        self.ontology = ontology
        self.skip_numeric_column_names = skip_numeric_column_names

    def annotate_column(self, column_name: str) -> ColumnAnnotation | None:
        """Annotate a single column name; None when no exact match exists."""
        if not column_name or not column_name.strip():
            return None
        if self.skip_numeric_column_names and _contains_digit(column_name):
            return None
        normalized = preprocess_column_name(column_name)
        if not normalized:
            return None
        match = self.ontology.match_normalized(normalized)
        if match is None:
            return None
        return ColumnAnnotation(
            column=column_name,
            type_label=match.label,
            ontology=self.ontology.name,
            method=self.method,
            confidence=1.0,
        )

    def annotate(self, table: Table) -> list[ColumnAnnotation]:
        """Annotate every column of ``table`` (missing matches are skipped)."""
        annotations = []
        for name in table.header:
            annotation = self.annotate_column(name)
            if annotation is not None:
                annotations.append(annotation)
        return annotations


class SemanticAnnotator:
    """Embedding-based annotation using a FastText-style model."""

    method = AnnotationMethod.SEMANTIC

    def __init__(
        self,
        ontology: Ontology,
        model: FastTextModel | None = None,
        similarity_threshold: float = 0.5,
        skip_numeric_column_names: bool = True,
    ) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise AnnotationError("similarity_threshold must be within [0, 1]")
        self.ontology = ontology
        self.model = model or FastTextModel()
        self.similarity_threshold = similarity_threshold
        self.skip_numeric_column_names = skip_numeric_column_names
        self._index = self._build_index()

    def _build_index(self) -> NearestNeighbourIndex:
        labels = self.ontology.labels()
        vectors = self.model.embed_batch([normalize_label(label) for label in labels])
        return NearestNeighbourIndex(labels, vectors)

    def annotate_column(self, column_name: str) -> ColumnAnnotation | None:
        """Annotate a single column name with its nearest semantic type."""
        if not column_name or not column_name.strip():
            return None
        if self.skip_numeric_column_names and _contains_digit(column_name):
            return None
        normalized = preprocess_column_name(column_name)
        if not normalized:
            return None
        vector = self.model.embed(normalized)
        best = self._index.best(vector)
        if best is None:
            return None
        label, similarity = best
        if similarity < self.similarity_threshold:
            return None
        return ColumnAnnotation(
            column=column_name,
            type_label=label,
            ontology=self.ontology.name,
            method=self.method,
            confidence=float(min(max(similarity, 0.0), 1.0)),
        )

    def annotate(self, table: Table) -> list[ColumnAnnotation]:
        """Annotate every column of ``table`` (below-threshold matches dropped)."""
        annotations = []
        for name in table.header:
            annotation = self.annotate_column(name)
            if annotation is not None:
                annotations.append(annotation)
        return annotations


class AnnotationPipeline:
    """Runs both annotation methods against every configured ontology."""

    def __init__(self, config: AnnotationConfig | None = None) -> None:
        self.config = config or AnnotationConfig()
        self.config.validate()
        self._ontologies = load_ontologies(self.config.ontologies)
        model = FastTextModel(
            dim=self.config.embedding_dim, ngram_sizes=self.config.ngram_sizes
        )
        self.syntactic = {
            name: SyntacticAnnotator(
                ontology, skip_numeric_column_names=self.config.skip_numeric_column_names
            )
            for name, ontology in self._ontologies.items()
        }
        self.semantic = {
            name: SemanticAnnotator(
                ontology,
                model=model,
                similarity_threshold=self.config.semantic_similarity_threshold,
                skip_numeric_column_names=self.config.skip_numeric_column_names,
            )
            for name, ontology in self._ontologies.items()
        }

    def annotate(self, table: Table) -> TableAnnotations:
        """Annotate ``table`` with both methods against every ontology."""
        result = TableAnnotations(table_id=table.table_id)
        for annotator_group in (self.syntactic, self.semantic):
            for annotator in annotator_group.values():
                for annotation in annotator.annotate(table):
                    result.add(annotation)
        return result


_DEFAULT_PIPELINE: AnnotationPipeline | None = None


def annotate_table(table: Table, config: AnnotationConfig | None = None) -> TableAnnotations:
    """Annotate a single table with the default (or given) configuration.

    The default pipeline is cached because building the semantic
    annotators embeds every ontology label once.
    """
    global _DEFAULT_PIPELINE
    if config is not None:
        return AnnotationPipeline(config).annotate(table)
    if _DEFAULT_PIPELINE is None:
        _DEFAULT_PIPELINE = AnnotationPipeline()
    return _DEFAULT_PIPELINE.annotate(table)
