"""Column annotation with semantic types (paper §3.4).

Two annotation methods are provided:

* :class:`SyntacticAnnotator` — normalises the column name (underscores,
  hyphens, camel-case, lower-casing) and matches it *exactly* against the
  normalised labels of the ontology. Matches carry confidence 1.0.
* :class:`SemanticAnnotator` — embeds the normalised column name and
  every ontology type label with a FastText-style character-n-gram model
  and annotates with the most similar type, keeping the cosine similarity
  as the annotation confidence. Annotations below a configurable
  threshold are discarded.

Both methods skip column names containing digits, because experiments in
the paper showed those produce spurious matches against types that
coincidentally contain a number.

Batches are the primary execution path: every annotator (and the
:class:`AnnotationPipeline`) exposes ``annotate_batch(tables)``, which
collects all column names across the batch, normalises and deduplicates
them once, and resolves them against each ontology with one batched
index query. ``annotate`` and ``annotate_column`` are thin wrappers over
the same resolution machinery, so their results are bit-identical to the
batched path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence

from ..config import DEFAULT_INDEX_CONFIG, AnnotationConfig, IndexConfig
from ..dataframe.table import Table
from ..embeddings.ann import PartitionedIndex, build_index
from ..embeddings.fasttext import FastTextModel
from ..embeddings.persist import embedder_fingerprint, load_index, publish_index
from ..embeddings.similarity import NearestNeighbourIndex
from ..errors import AnnotationError
from ..ontology.registry import load_ontologies
from ..ontology.types import Ontology, normalize_label
from ..storage.artifacts import IndexArtifactStore, fingerprint_digest, try_publish

__all__ = [
    "AnnotationMethod",
    "ColumnAnnotation",
    "TableAnnotations",
    "SyntacticAnnotator",
    "SemanticAnnotator",
    "AnnotationPipeline",
    "annotate_table",
    "annotate_tables",
]


class AnnotationMethod(str, Enum):
    """The annotation method that produced a column annotation."""

    SYNTACTIC = "syntactic"
    SEMANTIC = "semantic"


@dataclass(frozen=True)
class ColumnAnnotation:
    """A single column annotation."""

    column: str
    type_label: str
    ontology: str
    method: AnnotationMethod
    #: Cosine similarity (semantic) or 1.0 (syntactic exact match).
    confidence: float

    def as_tuple(self) -> tuple[str, float]:
        """(type label, confidence) pair used by the PII scrubber."""
        return (self.type_label, self.confidence)


@dataclass
class TableAnnotations:
    """All annotations of one table, grouped by method and ontology."""

    table_id: str
    #: method -> ontology -> list of ColumnAnnotation
    annotations: dict[AnnotationMethod, dict[str, list[ColumnAnnotation]]] = field(
        default_factory=dict
    )

    def add(self, annotation: ColumnAnnotation) -> None:
        per_method = self.annotations.setdefault(annotation.method, {})
        per_method.setdefault(annotation.ontology, []).append(annotation)

    def for_method(self, method: AnnotationMethod, ontology: str | None = None) -> list[ColumnAnnotation]:
        """Annotations of one method, optionally restricted to one ontology."""
        per_method = self.annotations.get(method, {})
        if ontology is not None:
            return list(per_method.get(ontology, []))
        result: list[ColumnAnnotation] = []
        for annotations in per_method.values():
            result.extend(annotations)
        return result

    def all(self) -> list[ColumnAnnotation]:
        """Every annotation across methods and ontologies."""
        result: list[ColumnAnnotation] = []
        for per_method in self.annotations.values():
            for annotations in per_method.values():
                result.extend(annotations)
        return result

    def column_types(
        self, method: AnnotationMethod, ontology: str
    ) -> dict[str, tuple[str, float]]:
        """column name -> (type label, confidence) for one method+ontology."""
        return {
            annotation.column: (annotation.type_label, annotation.confidence)
            for annotation in self.for_method(method, ontology)
        }

    def annotated_column_fraction(self, method: AnnotationMethod, n_columns: int) -> float:
        """Fraction of the table's columns annotated by ``method`` (any ontology)."""
        if n_columns == 0:
            return 0.0
        columns = {annotation.column for annotation in self.for_method(method)}
        return len(columns) / n_columns

    def pii_view(self) -> dict[str, list[tuple[str, float]]]:
        """column -> [(type, confidence), ...] across everything (for the scrubber)."""
        view: dict[str, list[tuple[str, float]]] = {}
        for annotation in self.all():
            view.setdefault(annotation.column, []).append(annotation.as_tuple())
        return view


def _contains_digit(text: str) -> bool:
    return any(char.isdigit() for char in text)


def preprocess_column_name(name: str) -> str:
    """Normalise a column name for matching (paper §3.4)."""
    return normalize_label(name)


class _ColumnNameAnnotator:
    """Shared batch machinery of both annotation methods.

    Subclasses define :meth:`resolve_normalized` — mapping a list of
    normalised column names to ``(type label, confidence)`` hits — and
    inherit the per-column / per-table / per-batch entry points, which
    all funnel through that single resolution primitive.
    """

    method: AnnotationMethod
    ontology: Ontology
    skip_numeric_column_names: bool

    def resolve_normalized(
        self, names: Sequence[str]
    ) -> dict[str, tuple[str, float] | None]:
        """normalised name -> (type label, confidence), or None for a miss."""
        raise NotImplementedError

    def _eligible_normalized(self, column_name: str) -> str | None:
        """The normalised form of an annotatable name, else None."""
        if not column_name or not column_name.strip():
            return None
        if self.skip_numeric_column_names and _contains_digit(column_name):
            return None
        return preprocess_column_name(column_name) or None

    def _annotation(self, column_name: str, hit: tuple[str, float]) -> ColumnAnnotation:
        label, confidence = hit
        return ColumnAnnotation(
            column=column_name,
            type_label=label,
            ontology=self.ontology.name,
            method=self.method,
            confidence=confidence,
        )

    def annotate_column(self, column_name: str) -> ColumnAnnotation | None:
        """Annotate a single column name; None when nothing matches."""
        normalized = self._eligible_normalized(column_name)
        if normalized is None:
            return None
        hit = self.resolve_normalized([normalized])[normalized]
        if hit is None:
            return None
        return self._annotation(column_name, hit)

    def annotate(self, table: Table) -> list[ColumnAnnotation]:
        """Annotate every column of ``table`` (missing matches are skipped)."""
        return self.annotate_batch([table])[0]

    def _collect_eligible(self, tables: Sequence[Table]) -> list[tuple[int, str, str]]:
        """(table index, column name, normalised name) for annotatable columns.

        Eligibility (and normalisation) is memoised per distinct column
        name — names repeat heavily across a corpus batch.
        """
        memo: dict[str, str | None] = {}
        eligible: list[tuple[int, str, str]] = []
        for table_index, table in enumerate(tables):
            for name in table.header:
                if name in memo:
                    normalized = memo[name]
                else:
                    normalized = memo[name] = self._eligible_normalized(name)
                if normalized is not None:
                    eligible.append((table_index, name, normalized))
        return eligible

    def _annotate_eligible(
        self, eligible: list[tuple[int, str, str]], n_tables: int
    ) -> list[list[ColumnAnnotation]]:
        """Resolve pre-collected eligible names and fan results back out."""
        resolved = self.resolve_normalized([normalized for _, _, normalized in eligible])
        results: list[list[ColumnAnnotation]] = [[] for _ in range(n_tables)]
        for table_index, name, normalized in eligible:
            hit = resolved[normalized]
            if hit is not None:
                results[table_index].append(self._annotation(name, hit))
        return results

    def annotate_batch(self, tables: Sequence[Table]) -> list[list[ColumnAnnotation]]:
        """Annotate every column of every table with one resolution pass.

        All eligible column names across the batch are normalised and
        deduplicated once, resolved together, and fanned back out to the
        tables in header order — the same annotations ``annotate`` would
        produce table by table.
        """
        return self._annotate_eligible(self._collect_eligible(tables), len(tables))


class SyntacticAnnotator(_ColumnNameAnnotator):
    """Exact-match annotation of normalised column names against an ontology."""

    method = AnnotationMethod.SYNTACTIC

    def __init__(self, ontology: Ontology, skip_numeric_column_names: bool = True) -> None:
        self.ontology = ontology
        self.skip_numeric_column_names = skip_numeric_column_names

    def resolve_normalized(
        self, names: Sequence[str]
    ) -> dict[str, tuple[str, float] | None]:
        """Exact lookups against the ontology's normalised label table."""
        resolved: dict[str, tuple[str, float] | None] = {}
        for name in names:
            if name in resolved:
                continue
            match = self.ontology.match_normalized(name)
            resolved[name] = None if match is None else (match.label, 1.0)
        return resolved


class SemanticAnnotator(_ColumnNameAnnotator):
    """Embedding-based annotation using a FastText-style model.

    The ontology label index (one embedded vector per type label) can be
    persisted to an :class:`~repro.storage.artifacts.IndexArtifactStore`
    and mmap'd back — guarded by the embedding model's configuration and
    a hash of the label list, so an ontology or model change always
    rebuilds. Query results over a loaded index are bit-identical to a
    freshly embedded one.
    """

    method = AnnotationMethod.SEMANTIC

    def __init__(
        self,
        ontology: Ontology,
        model: FastTextModel | None = None,
        similarity_threshold: float = 0.5,
        skip_numeric_column_names: bool = True,
        artifacts: IndexArtifactStore | None = None,
        index_config: IndexConfig | None = None,
    ) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise AnnotationError("similarity_threshold must be within [0, 1]")
        self.ontology = ontology
        self.model = model or FastTextModel()
        self.similarity_threshold = similarity_threshold
        self.skip_numeric_column_names = skip_numeric_column_names
        self.index_config = index_config if index_config is not None else DEFAULT_INDEX_CONFIG
        self._index = self._build_index(artifacts)

    def _index_fingerprint(self, labels: list[str]) -> dict:
        fingerprint = {
            "kind": "ontology-index",
            "encoder": embedder_fingerprint(self.model),
            "ontology": {
                "name": self.ontology.name,
                "labels_digest": fingerprint_digest(labels),
            },
        }
        # Ontologies are usually far below the tier's scale gate, so this
        # section (and the partitioned tier) only appears for very large
        # custom ontologies — stock fingerprints stay unchanged.
        if self.index_config.tier_active(len(labels)):
            fingerprint["ann"] = self.index_config.build_fingerprint()
        return fingerprint

    def _build_index(self, artifacts: IndexArtifactStore | None = None) -> NearestNeighbourIndex:
        labels = self.ontology.labels()
        artifact_name = f"ontology-{self.ontology.name}"
        fingerprint = None
        if artifacts is not None:
            fingerprint = self._index_fingerprint(labels)
            resolved = load_index(artifacts, artifact_name, fingerprint)
            if resolved is not None:
                index, _ = resolved
                if index.labels == list(labels):
                    if isinstance(index, PartitionedIndex):
                        index.nprobe = self.index_config.nprobe
                    return index
        vectors = self.model.embed_batch([normalize_label(label) for label in labels])
        index = build_index(labels, vectors, self.index_config)
        if fingerprint is not None:
            try_publish(publish_index, artifacts, artifact_name, fingerprint, index)
        return index

    def index_stats(self) -> dict:
        """The ontology index's instrumentation snapshot."""
        return self._index.stats()

    def publish_artifact(self, artifacts: IndexArtifactStore) -> bool:
        """Persist this annotator's ontology label index (no-op if current).

        Used by store-targeted builds to publish the coordinator's
        already-built index before worker processes spawn, so every
        worker resolves it with one mmap. Returns whether a valid
        artifact exists afterwards (publishing is best-effort: a
        read-only directory degrades to per-process builds).
        """
        labels = self.ontology.labels()
        fingerprint = self._index_fingerprint(labels)
        artifact_name = f"ontology-{self.ontology.name}"
        if load_index(artifacts, artifact_name, fingerprint) is not None:
            return True
        return try_publish(publish_index, artifacts, artifact_name, fingerprint, self._index)

    def resolve_normalized(
        self, names: Sequence[str]
    ) -> dict[str, tuple[str, float] | None]:
        """One batched embed + one batched index query for distinct names."""
        unique = list(dict.fromkeys(names))
        if not unique:
            return {}
        matrix = self.model.embed_batch(unique)
        hits = self._index.query_batch(matrix, top_k=1)
        resolved: dict[str, tuple[str, float] | None] = {}
        for name, row in zip(unique, hits):
            if not row:
                resolved[name] = None
                continue
            label, similarity = row[0]
            if similarity < self.similarity_threshold:
                resolved[name] = None
            else:
                resolved[name] = (label, float(min(max(similarity, 0.0), 1.0)))
        return resolved


class AnnotationPipeline:
    """Runs both annotation methods against every configured ontology.

    ``artifacts`` optionally persists/resolves the semantic annotators'
    ontology label indexes through an
    :class:`~repro.storage.artifacts.IndexArtifactStore`, skipping the
    embed-every-label construction cost on warm starts.
    """

    def __init__(
        self,
        config: AnnotationConfig | None = None,
        artifacts: IndexArtifactStore | None = None,
        index_config: IndexConfig | None = None,
    ) -> None:
        self.config = config or AnnotationConfig()
        self.config.validate()
        self._ontologies = load_ontologies(self.config.ontologies)
        model = FastTextModel(
            dim=self.config.embedding_dim, ngram_sizes=self.config.ngram_sizes
        )
        self.syntactic = {
            name: SyntacticAnnotator(
                ontology, skip_numeric_column_names=self.config.skip_numeric_column_names
            )
            for name, ontology in self._ontologies.items()
        }
        self.semantic = {
            name: SemanticAnnotator(
                ontology,
                model=model,
                similarity_threshold=self.config.semantic_similarity_threshold,
                skip_numeric_column_names=self.config.skip_numeric_column_names,
                artifacts=artifacts,
                index_config=index_config,
            )
            for name, ontology in self._ontologies.items()
        }

    def publish_artifacts(self, artifacts: IndexArtifactStore | None) -> None:
        """Persist every semantic annotator's ontology index (best-effort)."""
        if artifacts is None:
            return
        for annotator in self.semantic.values():
            annotator.publish_artifact(artifacts)

    def annotate(self, table: Table) -> TableAnnotations:
        """Annotate ``table`` with both methods against every ontology."""
        return self.annotate_batch([table])[0]

    def annotate_batch(self, tables: Sequence[Table]) -> list[TableAnnotations]:
        """Annotate a batch of tables with one resolution pass per annotator.

        Column names are collected across the whole batch, deduplicated,
        and resolved with a single batched index query per ontology and
        method; results are bit-identical to ``annotate`` per table. The
        eligibility/normalisation pass is shared across annotators with
        the same skip rule (all of them, under one config).
        """
        results = [TableAnnotations(table_id=table.table_id) for table in tables]
        eligible_by_skip_rule: dict[bool, list[tuple[int, str, str]]] = {}
        for annotator_group in (self.syntactic, self.semantic):
            for annotator in annotator_group.values():
                skip_rule = annotator.skip_numeric_column_names
                eligible = eligible_by_skip_rule.get(skip_rule)
                if eligible is None:
                    eligible = eligible_by_skip_rule[skip_rule] = annotator._collect_eligible(tables)
                per_table = annotator._annotate_eligible(eligible, len(tables))
                for result, annotations in zip(results, per_table):
                    for annotation in annotations:
                        result.add(annotation)
        return results


#: Built pipelines keyed by their configuration: constructing a pipeline
#: embeds every ontology label, so repeated ``annotate_table`` calls with
#: the same (or default) config must not rebuild the semantic indexes.
_PIPELINE_CACHE: dict[AnnotationConfig, AnnotationPipeline] = {}
_PIPELINE_CACHE_MAX = 8


def _pipeline_for(config: AnnotationConfig | None) -> AnnotationPipeline:
    key = config if config is not None else AnnotationConfig()
    pipeline = _PIPELINE_CACHE.get(key)
    if pipeline is None:
        if len(_PIPELINE_CACHE) >= _PIPELINE_CACHE_MAX:
            _PIPELINE_CACHE.pop(next(iter(_PIPELINE_CACHE)))
        pipeline = AnnotationPipeline(key)
        _PIPELINE_CACHE[key] = pipeline
    return pipeline


def annotate_table(table: Table, config: AnnotationConfig | None = None) -> TableAnnotations:
    """Annotate a single table with the default (or given) configuration.

    Pipelines are cached per configuration because building the semantic
    annotators embeds every ontology label once.
    """
    return _pipeline_for(config).annotate(table)


def annotate_tables(
    tables: Sequence[Table], config: AnnotationConfig | None = None
) -> list[TableAnnotations]:
    """Annotate a batch of tables with the default (or given) configuration."""
    return _pipeline_for(config).annotate_batch(tables)
