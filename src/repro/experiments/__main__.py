"""Command-line entry point: regenerate every paper table and figure.

Usage::

    python -m repro.experiments                 # default scale, print report
    python -m repro.experiments --scale small   # fast run
    python -m repro.experiments --output EXPERIMENTS.md
    python -m repro.experiments --only table7 fig6a
"""

from __future__ import annotations

import argparse
import sys

from .registry import format_result, run_all_experiments
from .report import generate_report, write_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the GitTables paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        choices=("small", "default", "large"),
        default="default",
        help="corpus scale used by every experiment (default: default)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write a Markdown report (paper vs measured) to this path",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="EXPERIMENT_ID",
        help="run only these experiment ids (e.g. table7 fig6a)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.only:
        results = run_all_experiments(scale=args.scale)
        unknown = [experiment_id for experiment_id in args.only if experiment_id not in results]
        if unknown:
            print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
            return 2
        for experiment_id in args.only:
            print(format_result(results[experiment_id]))
            print()
        return 0

    if args.output:
        write_report(args.output, scale=args.scale)
        print(f"wrote report to {args.output}")
        return 0

    print(generate_report(scale=args.scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
