"""Experiment E16: annotation quality on T2Dv2 (paper §4.3).

The paper evaluates both annotation methods against the hand-labelled
T2Dv2 gold standard: the semantic method produces the same annotation as
T2Dv2 for 54% of columns, the syntactic method for 61%, and a manual
review attributes a large share of disagreements to T2Dv2's coarser
labels. We run the same comparison against the synthetic T2Dv2 benchmark
whose gold labels are deliberately coarsened for a share of columns, and
additionally report agreement with the *fine-grained* true types, which
plays the role of the paper's manual review ("our annotation was better").
"""

from __future__ import annotations

from ..config import AnnotationConfig
from ..core.annotation import SemanticAnnotator, SyntacticAnnotator
from ..embeddings.fasttext import FastTextModel
from ..ontology.dbpedia import load_dbpedia
from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_annotation_quality", "evaluate_annotators_on_t2dv2"]


def evaluate_annotators_on_t2dv2(benchmark, annotation_config: AnnotationConfig | None = None) -> list[dict]:
    """Compare both annotators against (synthetic) T2Dv2 gold labels."""
    config = annotation_config or AnnotationConfig()
    ontology = load_dbpedia()
    model = FastTextModel(dim=config.embedding_dim, ngram_sizes=config.ngram_sizes)
    syntactic = SyntacticAnnotator(ontology)
    semantic = SemanticAnnotator(
        ontology, model=model, similarity_threshold=config.semantic_similarity_threshold
    )

    rows = []
    for method_name, annotator in (("syntactic", syntactic), ("semantic", semantic)):
        evaluated = 0
        agree_gold = 0
        agree_fine = 0
        finer_than_gold = 0
        for column in benchmark.columns:
            annotation = annotator.annotate_column(column.column_name)
            if annotation is None:
                continue
            evaluated += 1
            predicted = annotation.type_label
            if predicted == column.gold_type:
                agree_gold += 1
            if predicted == column.true_type:
                agree_fine += 1
                if column.gold_is_coarsened:
                    # Our annotation matches the fine-grained truth while the
                    # published gold label is the coarser one — the situation
                    # the paper's manual review found in GitTables' favour.
                    finer_than_gold += 1
        rows.append(
            {
                "method": method_name,
                "columns_evaluated": evaluated,
                "agreement_with_gold": round(agree_gold / evaluated, 3) if evaluated else 0.0,
                "agreement_with_fine_type": round(agree_fine / evaluated, 3) if evaluated else 0.0,
                "finer_than_gold": finer_than_gold,
            }
        )
    return rows


@register_experiment("annotation_quality")
def run_annotation_quality(scale: str = "default") -> ExperimentResult:
    """§4.3: agreement of our annotators with the T2Dv2 gold standard."""
    context = get_context(scale)
    rows = evaluate_annotators_on_t2dv2(context.t2dv2)
    return ExperimentResult(
        experiment_id="annotation_quality",
        title="Annotation quality evaluated on the T2Dv2 benchmark (§4.3)",
        rows=rows,
        paper_reference=[
            {"method": "semantic", "agreement_with_gold": 0.54,
             "note": "manual review: 63/148 disagreements favour GitTables"},
            {"method": "syntactic", "agreement_with_gold": 0.61,
             "note": "manual review: 21 disagreements favour GitTables, 9 favour T2Dv2"},
        ],
        notes=(
            "Gold agreement lands in the 50-75% band while fine-grained agreement is "
            "higher — the same granularity-mismatch structure the paper reports."
        ),
    )
