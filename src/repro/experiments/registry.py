"""Experiment result container, formatting, and the experiment registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ExperimentResult", "format_result", "register_experiment", "EXPERIMENT_REGISTRY", "run_all_experiments"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment driver."""

    #: Paper artefact id, e.g. ``"table1"`` or ``"fig4a"``.
    experiment_id: str
    #: Human-readable title.
    title: str
    #: Measured rows (list of dicts, one per output row/series point).
    rows: list[dict] = field(default_factory=list)
    #: The corresponding values reported by the paper, for comparison.
    paper_reference: list[dict] = field(default_factory=list)
    #: Free-text notes about substitutions and expected deviations.
    notes: str = ""

    def row_by(self, **criteria) -> dict:
        """The first measured row matching all key=value criteria."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria}")


def format_result(result: ExperimentResult) -> str:
    """Render an experiment result as readable text (used by examples/benches)."""
    lines = [f"== {result.experiment_id}: {result.title} =="]
    if result.rows:
        keys = list(result.rows[0].keys())
        lines.append(" | ".join(str(key) for key in keys))
        for row in result.rows:
            lines.append(" | ".join(str(row.get(key, "")) for key in keys))
    if result.paper_reference:
        lines.append("-- paper reference --")
        keys = list(result.paper_reference[0].keys())
        lines.append(" | ".join(str(key) for key in keys))
        for row in result.paper_reference:
            lines.append(" | ".join(str(row.get(key, "")) for key in keys))
    if result.notes:
        lines.append(f"notes: {result.notes}")
    return "\n".join(lines)


#: experiment id -> callable(scale) -> ExperimentResult
EXPERIMENT_REGISTRY: dict[str, Callable[[str], ExperimentResult]] = {}


def register_experiment(experiment_id: str):
    """Decorator registering a driver under ``experiment_id``."""

    def decorator(func: Callable[[str], ExperimentResult]):
        EXPERIMENT_REGISTRY[experiment_id] = func
        return func

    return decorator


def run_all_experiments(scale: str = "default") -> dict[str, ExperimentResult]:
    """Run every registered experiment at the given scale."""
    # Import the driver modules for their registration side effects.
    from . import (  # noqa: F401
        annotation_quality,
        annotation_stats,
        content_bias,
        corpus_stats,
        data_search,
        domain_shift,
        kg_matching,
        schema_completion,
        type_detection,
    )

    return {
        experiment_id: driver(scale)
        for experiment_id, driver in sorted(EXPERIMENT_REGISTRY.items())
    }
