"""Experiments E3/E5/E10/E11/E12: annotations (Tables 3, 5; Figures 4b, 4c, 5).

Annotation statistics are computed from the materialized columnar
projection of the corpus, and the figure binnings go through the
vectorized :func:`~repro.storage.columnar.histogram` kernel."""

from __future__ import annotations

import numpy as np

from ..core.stats import AnnotationStatistics, top_types
from ..ontology.pii import PII_FAKER_CLASSES
from ..storage.columnar import histogram
from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_table3", "run_table5", "run_fig4b", "run_fig4c", "run_fig5"]

_PAPER_TABLE3 = [
    {"semantic_type": "name", "percentage_columns": 2.202, "faker_class": "faker.name"},
    {"semantic_type": "address", "percentage_columns": 0.163, "faker_class": "faker.address"},
    {"semantic_type": "person", "percentage_columns": 0.068, "faker_class": "faker.name"},
    {"semantic_type": "email", "percentage_columns": 0.042, "faker_class": "faker.email"},
    {"semantic_type": "birth date", "percentage_columns": 0.017, "faker_class": "faker.date"},
    {"semantic_type": "home location", "percentage_columns": 0.008, "faker_class": "faker.city"},
    {"semantic_type": "birth place", "percentage_columns": 0.003, "faker_class": "faker.postcode"},
    {"semantic_type": "postal code", "percentage_columns": 0.003, "faker_class": "faker.city"},
]

_PAPER_TABLE5 = [
    {"method": "syntactic", "ontology": "dbpedia", "annotated_tables": 723_000, "annotated_columns": 2_900_000, "unique_types": 835},
    {"method": "syntactic", "ontology": "schema_org", "annotated_tables": 738_000, "annotated_columns": 2_400_000, "unique_types": 677},
    {"method": "semantic", "ontology": "dbpedia", "annotated_tables": 958_000, "annotated_columns": 8_500_000, "unique_types": 2_400},
    {"method": "semantic", "ontology": "schema_org", "annotated_tables": 962_000, "annotated_columns": 8_400_000, "unique_types": 2_400},
]

_PAPER_FIG5_DBPEDIA_TOP = [
    "id", "title", "type", "author", "created", "parent", "name", "comment", "min", "rank",
    "class", "status", "year", "note", "species", "genus", "date", "description", "speaker",
    "time", "value", "dam", "code", "state", "artist",
]
_PAPER_FIG5_SCHEMA_TOP = [
    "id", "title", "author", "url", "parent", "name", "text", "comment", "class", "status",
    "date", "description", "time", "line", "value", "code", "state", "artist", "person",
    "events", "country", "city", "lyrics", "abstract", "category",
]


@register_experiment("table3")
def run_table3(scale: str = "default") -> ExperimentResult:
    """Table 3: PII semantic types, column percentages, Faker classes."""
    context = get_context(scale)
    report = context.pipeline_result.curation_report
    percentages = report.type_percentages()
    rows = []
    for semantic_type, faker_class in PII_FAKER_CLASSES.items():
        rows.append(
            {
                "semantic_type": semantic_type,
                "percentage_columns": round(percentages.get(semantic_type, 0.0), 3),
                "faker_class": faker_class,
            }
        )
    rows.sort(key=lambda row: -row["percentage_columns"])
    overall = round(100.0 * report.scrubbed_column_fraction, 3)
    return ExperimentResult(
        experiment_id="table3",
        title="Semantic types associated with PII and Faker classes",
        rows=rows,
        paper_reference=_PAPER_TABLE3,
        notes=(
            f"Overall {overall}% of columns contain fake values "
            "(paper: 0.3%); the ordering of PII types and the Faker class "
            "mapping are the reproduced structure."
        ),
    )


@register_experiment("table5")
def run_table5(scale: str = "default") -> ExperimentResult:
    """Table 5: annotation statistics by method and ontology."""
    context = get_context(scale)
    stats = AnnotationStatistics.from_projection(context.gittables_projection())
    return ExperimentResult(
        experiment_id="table5",
        title="Statistics of annotations by method and ontology",
        rows=stats.as_table5_rows(),
        paper_reference=_PAPER_TABLE5,
        notes=(
            "The semantic method annotates more tables and roughly 2-3x more "
            "columns than the syntactic method, across both ontologies."
        ),
    )


@register_experiment("fig4b")
def run_fig4b(scale: str = "default") -> ExperimentResult:
    """Figure 4b: percentage of annotated columns per table, per method."""
    context = get_context(scale)
    stats = AnnotationStatistics.from_projection(context.gittables_projection())
    bins = np.linspace(0.0, 1.0, 11)
    rows = []
    for method, coverages in stats.coverage_per_table.items():
        counts = histogram(np.array(coverages), bins=bins)
        for bin_index, count in enumerate(counts):
            rows.append(
                {
                    "method": method,
                    "coverage_bin_low_pct": round(100 * bins[bin_index], 0),
                    "coverage_bin_high_pct": round(100 * bins[bin_index + 1], 0),
                    "table_count": int(count),
                }
            )
    rows.append(
        {
            "method": "mean coverage",
            "coverage_bin_low_pct": round(100 * stats.mean_coverage["syntactic"], 1),
            "coverage_bin_high_pct": round(100 * stats.mean_coverage["semantic"], 1),
            "table_count": stats.table_count,
        }
    )
    return ExperimentResult(
        experiment_id="fig4b",
        title="Percentage annotated columns per table, per annotation method",
        rows=rows,
        paper_reference=[
            {"method": "syntactic", "mean_coverage_pct": 26},
            {"method": "semantic", "mean_coverage_pct": 71},
        ],
        notes="The semantic method yields more annotations per table than the syntactic one.",
    )


@register_experiment("fig4c")
def run_fig4c(scale: str = "default") -> ExperimentResult:
    """Figure 4c: cosine similarity distribution of semantic annotations."""
    context = get_context(scale)
    stats = AnnotationStatistics.from_projection(context.gittables_projection())
    bins = np.linspace(0.5, 1.0, 11)
    rows = []
    for ontology, scores in stats.similarity_scores.items():
        counts = histogram(np.array(scores), bins=bins)
        for bin_index, count in enumerate(counts):
            rows.append(
                {
                    "ontology": ontology,
                    "similarity_bin_low": round(float(bins[bin_index]), 2),
                    "similarity_bin_high": round(float(bins[bin_index + 1]), 2),
                    "annotation_count": int(count),
                }
            )
        scores_array = np.array(scores) if scores else np.array([0.0])
        rows.append(
            {
                "ontology": f"{ontology} (summary)",
                "similarity_bin_low": round(float(np.mean(scores_array)), 3),
                "similarity_bin_high": round(float(np.mean(scores_array >= 0.99)), 3),
                "annotation_count": len(scores),
            }
        )
    return ExperimentResult(
        experiment_id="fig4c",
        title="Cosine similarity of semantic annotations",
        rows=rows,
        paper_reference=[
            {"observation": "peak at similarity 1.0 (syntactic resemblance)"},
            {"observation": "remaining distribution centred around 0.75"},
        ],
        notes="Summary rows report (mean similarity, fraction at 1.0, count) per ontology.",
    )


@register_experiment("fig5")
def run_fig5(scale: str = "default") -> ExperimentResult:
    """Figure 5: top-25 column semantic types per ontology (syntactic method)."""
    context = get_context(scale)
    stats = AnnotationStatistics.from_projection(context.gittables_projection())
    rows = []
    for ontology in ("dbpedia", "schema_org"):
        for rank, (type_label, count) in enumerate(
            top_types(stats, "syntactic", ontology, k=25), start=1
        ):
            rows.append(
                {"ontology": ontology, "rank": rank, "type": type_label, "column_count": count}
            )
    return ExperimentResult(
        experiment_id="fig5",
        title="Column annotation counts of top-25 semantic types (syntactic method)",
        rows=rows,
        paper_reference=[
            {"ontology": "dbpedia", "top_types": ", ".join(_PAPER_FIG5_DBPEDIA_TOP)},
            {"ontology": "schema_org", "top_types": ", ".join(_PAPER_FIG5_SCHEMA_TOP)},
        ],
        notes=(
            "Database-flavoured types (id, value, status, date, code) dominate, "
            "unlike the name/title-dominated Web-table distribution."
        ),
    )
