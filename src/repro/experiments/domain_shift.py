"""Experiment E15: data-shift domain classifier (paper §4.2, 93% accuracy)."""

from __future__ import annotations

from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_domain_shift"]

_SCALE_SETTINGS = {
    "small": {"n_columns_per_corpus": 120, "n_splits": 5, "n_estimators": 10},
    "default": {"n_columns_per_corpus": 300, "n_splits": 10, "n_estimators": 20},
    "large": {"n_columns_per_corpus": 600, "n_splits": 10, "n_estimators": 30},
}


@register_experiment("domain_shift")
def run_domain_shift(scale: str = "default") -> ExperimentResult:
    """Train the GitTables-vs-VizNet domain classifier and report accuracy."""
    context = get_context(scale)
    settings = _SCALE_SETTINGS.get(scale, _SCALE_SETTINGS["default"])
    result = context.session.shift_report(context.viznet, seed=context.seed, **settings)
    rows = [
        {
            "classifier": "RandomForest (Sherlock features)",
            "mean_accuracy": round(result.mean_accuracy, 3),
            "std_accuracy": round(result.std_accuracy, 3),
            "columns_per_corpus": result.n_columns_per_corpus,
            "n_features": result.n_features,
        }
    ]
    return ExperimentResult(
        experiment_id="domain_shift",
        title="Data shift detection between GitTables and VizNet (§4.2)",
        rows=rows,
        paper_reference=[{"mean_accuracy": 0.93, "std_accuracy": 0.04, "columns_per_corpus": 5000}],
        notes=(
            "High accuracy means the corpora are structurally distinguishable, "
            "confirming GitTables' complementary content."
        ),
    )
