"""Experiment drivers regenerating every table and figure of the paper.

Each driver produces an :class:`~repro.experiments.registry.ExperimentResult`
holding the rows/series the paper reports plus the paper's reference
values, so the benchmark harness and ``EXPERIMENTS.md`` can compare them
side by side. Corpora are built once per process and shared across
drivers through :mod:`~repro.experiments.context`.
"""

from .context import ExperimentContext, get_context
from .registry import ExperimentResult, format_result, run_all_experiments, EXPERIMENT_REGISTRY

__all__ = [
    "EXPERIMENT_REGISTRY",
    "ExperimentContext",
    "ExperimentResult",
    "format_result",
    "get_context",
    "run_all_experiments",
]
