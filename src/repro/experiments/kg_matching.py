"""Experiment E13: table-to-KG matching benchmark (Figure 6a)."""

from __future__ import annotations

from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_fig6a"]

_PAPER_FIG6A = [
    {"observation": "precision and recall stay low across all participating systems"},
    {"observation": "Schema.org precision slightly higher, thanks to pattern-matching methods"},
    {"observation": "benchmark: 1,101 tables, >=3 columns and >=5 rows, 122 DBpedia / 59 Schema.org types"},
]


@register_experiment("fig6a")
def run_fig6a(scale: str = "default") -> ExperimentResult:
    """Figure 6a: precision/recall of KG matchers on the curated benchmark."""
    context = get_context(scale)
    session = context.session
    benchmark = session.kg_benchmark(min_columns=3, min_rows=5)
    rows = []
    for score in session.match_kg_all(min_columns=3, min_rows=5):
        rows.append(
            {
                "system": score.matcher,
                "ontology": score.ontology,
                "precision": round(score.precision, 3),
                "recall": round(score.recall, 3),
                "f1": round(score.f1, 3),
                "columns": score.n_columns,
            }
        )
    rows.append(
        {
            "system": "(benchmark size)",
            "ontology": "both",
            "precision": benchmark.n_tables,
            "recall": len(benchmark.columns),
            "f1": len(benchmark.distinct_types("dbpedia")),
            "columns": len(benchmark.distinct_types("schema_org")),
        }
    )
    return ExperimentResult(
        experiment_id="fig6a",
        title="Table-to-KG matching results on the GitTables benchmark (Figure 6a)",
        rows=rows,
        paper_reference=_PAPER_FIG6A,
        notes=(
            "Value-linking systems abstain on most database-like columns, so "
            "recall collapses even when precision on the few linked columns is fine."
        ),
    )
