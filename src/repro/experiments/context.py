"""Shared experiment context: corpora built once, reused everywhere.

Building a GitTables corpus is the expensive step of every experiment, so
the context caches one corpus (plus the synthetic VizNet contrast corpus
and the T2Dv2 benchmark) per scale. Scales:

* ``"small"`` — fast, used by the test suite (~100 tables),
* ``"default"`` — the standard experiment scale (~400 tables),
* ``"large"`` — used by the benchmark harness when more statistical
  stability is wanted (~1200 tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..api import GitTables
from ..benchdata.t2dv2 import T2Dv2Benchmark, build_t2dv2
from ..benchdata.webtables import WebTableConfig, build_webtables_corpus
from ..config import PipelineConfig
from ..core.corpus import GitTablesCorpus
from ..core.pipeline import PipelineResult, build_corpus
from ..github.content import GeneratorConfig

__all__ = ["ExperimentContext", "get_context", "clear_context_cache"]

_SCALES = ("small", "default", "large")


@dataclass
class ExperimentContext:
    """Lazily built corpora shared by the experiment drivers.

    With ``store_dir`` set, the GitTables corpus is built *into a
    resumable sharded on-disk store* (one subdirectory per
    (scale, seed)) instead of memory: an interrupted build resumes from
    its manifest, a finished store is reused as-is by later processes,
    and the drivers iterate the lazy store without materializing the
    table list.
    """

    scale: str = "default"
    seed: int = 20230530
    #: Optional directory for persistent, resumable corpus storage.
    store_dir: str | None = None
    #: Worker processes for the store-backed corpus build (1 = serial).
    #: Content-neutral: any process count yields byte-identical stores,
    #: so cached/shared store directories stay interchangeable.
    processes: int = 1
    _pipeline_result: PipelineResult | None = field(default=None, repr=False)
    _session: GitTables | None = field(default=None, repr=False)
    _viznet: GitTablesCorpus | None = field(default=None, repr=False)
    _t2dv2: T2Dv2Benchmark | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.scale not in _SCALES:
            raise ValueError(f"unknown scale {self.scale!r}; expected one of {_SCALES}")

    # -- configuration per scale -------------------------------------------

    def pipeline_config(self) -> PipelineConfig:
        if self.scale == "small":
            return PipelineConfig.small(seed=self.seed)
        if self.scale == "large":
            return PipelineConfig.large(seed=self.seed)
        return PipelineConfig.default(seed=self.seed)

    def generator_config(self) -> GeneratorConfig | None:
        if self.scale == "small":
            return GeneratorConfig(n_repositories=250, mean_rows=60, mean_cols=10, seed=self.seed)
        return None

    def webtable_config(self) -> WebTableConfig:
        if self.scale == "small":
            return WebTableConfig(n_tables=120, seed=self.seed)
        if self.scale == "large":
            return WebTableConfig(n_tables=800, seed=self.seed)
        return WebTableConfig(n_tables=300, seed=self.seed)

    # -- cached artefacts -----------------------------------------------------

    def corpus_store_dir(self) -> str | None:
        """Where this context's sharded corpus lives (None = in memory)."""
        if self.store_dir is None:
            return None
        import os

        return os.path.join(self.store_dir, f"gittables-{self.scale}-seed{self.seed}")

    def artifact_store(self):
        """The persistent index artifact store of this context's corpus.

        ``None`` for in-memory contexts. Store-backed contexts share one
        artifact store across every experiment driver *and* across
        processes: the first session to need an index publishes it, all
        later sessions mmap it back.
        """
        directory = self.corpus_store_dir()
        if directory is None:
            return None
        from ..storage.artifacts import IndexArtifactStore

        return IndexArtifactStore.for_corpus_dir(directory)

    @property
    def pipeline_result(self) -> PipelineResult:
        """The GitTables construction run (corpus + stage reports)."""
        if self._pipeline_result is None:
            self._pipeline_result = build_corpus(
                self.pipeline_config(),
                generator_config=self.generator_config(),
                store_dir=self.corpus_store_dir(),
                processes=self.processes if self.store_dir is not None else None,
            )
        return self._pipeline_result

    @property
    def gittables(self) -> GitTablesCorpus:
        """The constructed GitTables corpus."""
        return self.pipeline_result.corpus

    @property
    def session(self) -> GitTables:
        """The :class:`~repro.api.GitTables` facade over the corpus.

        Shared across all experiment drivers of this context, so the
        embedding cache, the search/completion indexes and the KG
        benchmark are built at most once per scale. Store-backed
        contexts additionally attach the persistent artifact store, so
        those indexes are built at most once per *store directory* —
        later processes mmap the published artifacts.
        """
        if self._session is None:
            self._session = GitTables.from_result(
                self.pipeline_result,
                config=self.pipeline_config(),
                artifacts=self.artifact_store(),
            )
        return self._session

    def gittables_projection(self):
        """The columnar stats projection of the GitTables corpus.

        Resolved through :func:`~repro.storage.columnar.ensure_projection`:
        an already-attached projection wins, store-backed contexts mmap
        the artifact published at build finalize, and only a cache miss
        (or an in-memory corpus) triggers a full scan. The projection is
        attached to the corpus, so every later ``from_corpus`` dispatch
        in this process takes the columnar path too.
        """
        from ..storage.columnar import ensure_projection

        return ensure_projection(self.gittables, self.artifact_store())

    def viznet_projection(self):
        """The columnar stats projection of the contrast corpus (in memory)."""
        from ..storage.columnar import ensure_projection

        return ensure_projection(self.viznet)

    @property
    def viznet(self) -> GitTablesCorpus:
        """The synthetic VizNet/Web-table contrast corpus."""
        if self._viznet is None:
            self._viznet = build_webtables_corpus(self.webtable_config())
        return self._viznet

    @property
    def t2dv2(self) -> T2Dv2Benchmark:
        """The synthetic T2Dv2 gold standard."""
        if self._t2dv2 is None:
            n_tables = {"small": 40, "default": 60, "large": 120}[self.scale]
            self._t2dv2 = build_t2dv2(n_tables=n_tables, seed=self.seed)
        return self._t2dv2


_CONTEXT_CACHE: dict[tuple[str, int, str | None], ExperimentContext] = {}


def get_context(
    scale: str = "default",
    seed: int = 20230530,
    store_dir: str | None = None,
    processes: int = 1,
) -> ExperimentContext:
    """Return the cached context for (scale, seed), building it lazily.

    ``store_dir`` opts the context into persistent sharded corpus
    storage (resumable builds, lazy loading; see
    :class:`ExperimentContext`); ``processes`` > 1 runs that store
    build process-parallel. The cache key deliberately excludes
    ``processes`` — the stores are byte-identical either way, so a
    context built with any process count is reusable by all.
    """
    key = (scale, seed, store_dir)
    if key not in _CONTEXT_CACHE:
        _CONTEXT_CACHE[key] = ExperimentContext(
            scale=scale, seed=seed, store_dir=store_dir, processes=processes
        )
    return _CONTEXT_CACHE[key]


def clear_context_cache() -> None:
    """Drop all cached contexts (used by tests that need isolation)."""
    _CONTEXT_CACHE.clear()
