"""Experiment E6: content biases (Table 6).

The paper profiles GitTables along the "person" and "geography" bias
categories: for semantic types like country, city, gender, ethnicity,
race and nationality it reports the percentage of columns carrying the
type and the most frequent values, finding a skew towards Western,
English-speaking regions and populations.
"""

from __future__ import annotations

from collections import Counter

from ..core.annotation import AnnotationMethod
from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_table6", "BIAS_TYPES"]

#: The semantic types profiled in Table 6.
BIAS_TYPES: tuple[str, ...] = ("country", "city", "gender", "ethnicity", "race", "nationality")

_PAPER_TABLE6 = [
    {"semantic_type": "country", "percentage_columns": 0.086,
     "frequent_values": "United States, Canada, Belgium, Germany"},
    {"semantic_type": "city", "percentage_columns": 0.056,
     "frequent_values": "New York, London, Coquitlam, Cambridge"},
    {"semantic_type": "gender", "percentage_columns": 0.040, "frequent_values": "Male, Female, F, M"},
    {"semantic_type": "ethnicity", "percentage_columns": 0.030,
     "frequent_values": "French, Dutch, Spanish, Mexican"},
    {"semantic_type": "race", "percentage_columns": 0.007, "frequent_values": "Men, Human, White"},
    {"semantic_type": "nationality", "percentage_columns": 0.003,
     "frequent_values": "Hispanic, White, Caucasian (White)"},
]


@register_experiment("table6")
def run_table6(scale: str = "default") -> ExperimentResult:
    """Table 6: bias-relevant semantic types and their most frequent values."""
    context = get_context(scale)
    corpus = context.gittables

    total_columns = corpus.total_columns()
    per_type_columns: Counter[str] = Counter()
    per_type_values: dict[str, Counter] = {label: Counter() for label in BIAS_TYPES}

    for annotated in corpus:
        seen_columns: set[tuple[str, str]] = set()
        for method in (AnnotationMethod.SYNTACTIC, AnnotationMethod.SEMANTIC):
            for annotation in annotated.annotations.for_method(method):
                if annotation.type_label not in BIAS_TYPES:
                    continue
                key = (annotation.column, annotation.type_label)
                if key in seen_columns:
                    continue
                seen_columns.add(key)
                per_type_columns[annotation.type_label] += 1
                try:
                    column = annotated.table.column(annotation.column)
                except KeyError:
                    continue
                for value in column.non_missing_values:
                    per_type_values[annotation.type_label][str(value)] += 1

    rows = []
    for label in BIAS_TYPES:
        frequent = [value for value, _ in per_type_values[label].most_common(4)]
        rows.append(
            {
                "semantic_type": label,
                "percentage_columns": round(100.0 * per_type_columns[label] / max(total_columns, 1), 3),
                "frequent_values": ", ".join(frequent),
            }
        )
    return ExperimentResult(
        experiment_id="table6",
        title="Semantic types indicating subregions and subpopulations",
        rows=rows,
        paper_reference=_PAPER_TABLE6,
        notes=(
            "Geographic and demographic columns are a small share of the corpus "
            "and skew towards Western / English-speaking values."
        ),
    )
