"""Experiment E6: content biases (Table 6).

The paper profiles GitTables along the "person" and "geography" bias
categories: for semantic types like country, city, gender, ethnicity,
race and nationality it reports the percentage of columns carrying the
type and the most frequent values, finding a skew towards Western,
English-speaking regions and populations.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..core.annotation import AnnotationMethod
from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_table6", "BIAS_TYPES"]

#: The semantic types profiled in Table 6.
BIAS_TYPES: tuple[str, ...] = ("country", "city", "gender", "ethnicity", "race", "nationality")

_PAPER_TABLE6 = [
    {"semantic_type": "country", "percentage_columns": 0.086,
     "frequent_values": "United States, Canada, Belgium, Germany"},
    {"semantic_type": "city", "percentage_columns": 0.056,
     "frequent_values": "New York, London, Coquitlam, Cambridge"},
    {"semantic_type": "gender", "percentage_columns": 0.040, "frequent_values": "Male, Female, F, M"},
    {"semantic_type": "ethnicity", "percentage_columns": 0.030,
     "frequent_values": "French, Dutch, Spanish, Mexican"},
    {"semantic_type": "race", "percentage_columns": 0.007, "frequent_values": "Men, Human, White"},
    {"semantic_type": "nationality", "percentage_columns": 0.003,
     "frequent_values": "Hispanic, White, Caucasian (White)"},
]


@register_experiment("table6")
def run_table6(scale: str = "default") -> ExperimentResult:
    """Table 6: bias-relevant semantic types and their most frequent values."""
    context = get_context(scale)
    corpus = context.gittables
    projection = context.gittables_projection()

    # Column shares come straight off the projection: distinct
    # (table, column, bias type) triples over the annotation rows,
    # with the cross-method dedup the scan did per table.
    total_columns = projection.column_count
    per_type_columns: Counter[str] = Counter()
    label_code = {label: code for code, label in enumerate(projection.type_labels)}
    bias_codes = np.array(
        sorted(label_code[label] for label in BIAS_TYPES if label in label_code),
        dtype=np.int64,
    )
    row_mask = np.isin(projection.ann_label.astype(np.int64), bias_codes)
    triples = np.stack(
        [
            projection.ann_table[row_mask],
            projection.ann_column[row_mask].astype(np.int64),
            projection.ann_label[row_mask].astype(np.int64),
        ],
        axis=1,
    )
    distinct = np.unique(triples, axis=0)
    for code in distinct[:, 2].tolist():
        per_type_columns[projection.type_labels[code]] += 1

    # Frequent values still need cell content, but only the tables the
    # projection says carry a bias type are fetched and scanned — in
    # corpus order, so value-count ties break exactly as a full scan.
    per_type_values: dict[str, Counter] = {label: Counter() for label in BIAS_TYPES}
    for table_index in np.unique(projection.ann_table[row_mask]).tolist():
        annotated = corpus.get(projection.table_ids[table_index])
        seen_columns: set[tuple[str, str]] = set()
        for method in (AnnotationMethod.SYNTACTIC, AnnotationMethod.SEMANTIC):
            for annotation in annotated.annotations.for_method(method):
                if annotation.type_label not in BIAS_TYPES:
                    continue
                key = (annotation.column, annotation.type_label)
                if key in seen_columns:
                    continue
                seen_columns.add(key)
                try:
                    column = annotated.table.column(annotation.column)
                except KeyError:
                    continue
                for value in column.non_missing_values:
                    per_type_values[annotation.type_label][str(value)] += 1

    rows = []
    for label in BIAS_TYPES:
        frequent = [value for value, _ in per_type_values[label].most_common(4)]
        rows.append(
            {
                "semantic_type": label,
                "percentage_columns": round(100.0 * per_type_columns[label] / max(total_columns, 1), 3),
                "frequent_values": ", ".join(frequent),
            }
        )
    return ExperimentResult(
        experiment_id="table6",
        title="Semantic types indicating subregions and subpopulations",
        rows=rows,
        paper_reference=_PAPER_TABLE6,
        notes=(
            "Geographic and demographic columns are a small share of the corpus "
            "and skew towards Western / English-speaking values."
        ),
    )
