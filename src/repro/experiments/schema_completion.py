"""Experiment E8: schema completion on CTU prefixes (Table 8)."""

from __future__ import annotations

import numpy as np

from ..benchdata.ctu import CTU_SCHEMAS
from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_table8"]

_PAPER_TABLE8 = [
    {"header_prefix": "emp_no, birth_date, first_name", "cosine_similarity": 0.44,
     "nearest_completion": "Title, TitleOfCourtesy, Address, HireDate, City"},
    {"header_prefix": "orderNumber, orderDate, requiredDate", "cosine_similarity": 0.50,
     "nearest_completion": "ORDER_TRACKING_NUMBER, ORDER_TOTAL"},
    {"header_prefix": "WorkOrderID, ProductID, OrderQty", "cosine_similarity": 0.53,
     "nearest_completion": "productType, inventoryId, articleId, productName"},
]


@register_experiment("table8")
def run_table8(scale: str = "default") -> ExperimentResult:
    """Table 8: nearest completions for CTU schema prefixes (k=10, N=3)."""
    context = get_context(scale)
    session = context.session
    rows = []
    similarities = []
    for schema in CTU_SCHEMAS:
        evaluation = session.evaluate_completion(schema.attributes, prefix_length=3, k=10)
        completion_preview = ", ".join(evaluation.best_completion.schema[:5])
        similarity = round(evaluation.best_schema_similarity, 2)
        similarities.append(similarity)
        rows.append(
            {
                "header_prefix": ", ".join(schema.prefix(3)),
                "nearest_completion": completion_preview,
                "cosine_similarity": similarity,
            }
        )
    rows.append(
        {
            "header_prefix": "(average)",
            "nearest_completion": "",
            "cosine_similarity": round(float(np.mean(similarities)), 2),
        }
    )
    return ExperimentResult(
        experiment_id="table8",
        title="Suggested completions from GitTables for CTU schema prefixes",
        rows=rows,
        paper_reference=_PAPER_TABLE8,
        notes=(
            "Paper reports an average full-schema cosine similarity around 0.49; "
            "completions should be topically related to the prefix (employee "
            "details for the employees prefix, order attributes for orders)."
        ),
    )
