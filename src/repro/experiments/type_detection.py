"""Experiment E7: semantic column type detection (Table 7)."""

from __future__ import annotations

from ..applications.type_detection import TypeDetectionExperiment
from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_table7"]

_PAPER_TABLE7 = [
    {"train_corpus": "GitTables", "eval_corpus": "GitTables", "f1_macro": 0.86},
    {"train_corpus": "VizNet", "eval_corpus": "VizNet", "f1_macro": 0.77},
    {"train_corpus": "VizNet", "eval_corpus": "GitTables", "f1_macro": 0.66},
]

_SCALE_SETTINGS = {
    "small": {"columns_per_type": 30, "epochs": 15},
    "default": {"columns_per_type": 60, "epochs": 25},
    "large": {"columns_per_type": 120, "epochs": 30},
}


@register_experiment("table7")
def run_table7(scale: str = "default") -> ExperimentResult:
    """Table 7: F1 of type detection models across train/eval corpora."""
    context = get_context(scale)
    settings = _SCALE_SETTINGS.get(scale, _SCALE_SETTINGS["default"])
    # Store-backed contexts persist the sampled feature matrices, so
    # repeated runs mmap them back instead of re-scanning the corpus.
    experiment = TypeDetectionExperiment(
        seed=context.seed, artifacts=context.artifact_store(), **settings
    )
    results = experiment.run_table7(context.session.corpus, context.viznet)
    rows = [result.as_table7_row() for result in results]
    return ExperimentResult(
        experiment_id="table7",
        title="F1 scores of semantic type detection models across corpora",
        rows=rows,
        paper_reference=_PAPER_TABLE7,
        notes=(
            "The within-corpus models score high while the VizNet-trained model "
            "drops sharply when evaluated on GitTables — Web-table models do not "
            "transfer to database-like tables."
        ),
    )
