"""Experiment E14: data search over embedded schemas (Figure 6b)."""

from __future__ import annotations

from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_fig6b", "DEFAULT_QUERIES"]

#: The paper's example query plus additional enterprise-flavoured queries.
DEFAULT_QUERIES: tuple[str, ...] = (
    "status and sales amount per product",
    "employee salary and hire date",
    "sensor temperature measurements over time",
    "species isolated per country",
)

_PAPER_FIG6B = [
    {"query": "status and sales amount per product",
     "retrieved_schema": "id, quantity, total_price, status, product_id, order_id"},
]


@register_experiment("fig6b")
def run_fig6b(scale: str = "default") -> ExperimentResult:
    """Figure 6b: tables retrieved for natural-language queries."""
    context = get_context(scale)
    session = context.session
    rows = []
    for query in DEFAULT_QUERIES:
        results = session.search(query, k=3)
        for result in results:
            rows.append(
                {
                    "query": query,
                    "rank": result.rank,
                    "score": round(result.score, 3),
                    "schema": ", ".join(result.schema[:8]),
                }
            )
    return ExperimentResult(
        experiment_id="fig6b",
        title="Data search: tables retrieved for natural-language queries (Figure 6b)",
        rows=rows,
        paper_reference=_PAPER_FIG6B,
        notes=(
            "The paper's example query should retrieve an order-style table with "
            "product, status and price attributes."
        ),
    )
