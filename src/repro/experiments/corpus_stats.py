"""Experiments E1/E2/E4/E9: corpus structure (Tables 1, 2, 4; Figure 4a).

All statistics here run over the materialized columnar projections
(:meth:`~repro.experiments.context.ExperimentContext.gittables_projection`)
rather than per-table iteration, so store-backed experiment runs never
re-parse table JSON for aggregates."""

from __future__ import annotations

from ..core.stats import AnnotationStatistics, CorpusStatistics, dimension_cdf
from .context import get_context
from .registry import ExperimentResult, register_experiment

__all__ = ["run_table1", "run_table2", "run_table4", "run_fig4a"]

_PAPER_TABLE1 = [
    {"name": "WDC WebTables", "n_tables": 90_000_000, "avg_rows": 11, "avg_cols": 4},
    {"name": "Dresden Web Table Corpus", "n_tables": 59_000_000, "avg_rows": 17, "avg_cols": 6},
    {"name": "WikiTables", "n_tables": 2_000_000, "avg_rows": 15, "avg_cols": 6},
    {"name": "Open Data Portal Watch", "n_tables": 107_000, "avg_rows": 365, "avg_cols": 14},
    {"name": "VizNet", "n_tables": 31_000_000, "avg_rows": 17, "avg_cols": 3},
    {"name": "GitTables", "n_tables": 1_000_000, "avg_rows": 142, "avg_cols": 12},
]

_PAPER_TABLE2 = [
    {"dataset": "T2Dv2", "n_tables": 779, "avg_rows": 17, "avg_cols": 4, "n_types": 275, "ontology": "DBpedia"},
    {"dataset": "SemTab", "n_tables": 132_000, "avg_rows": 224, "avg_cols": 4, "n_types": None, "ontology": "DBpedia"},
    {"dataset": "TURL", "n_tables": 407_000, "avg_rows": 18, "avg_cols": 3, "n_types": 255, "ontology": "Freebase"},
    {"dataset": "GitTables", "n_tables": 962_000, "avg_rows": 142, "avg_cols": 12, "n_types": 2400,
     "ontology": "DBpedia + Schema.org"},
]

_PAPER_TABLE4 = [
    {"atomic_type": "numeric", "gittables_pct": 57.9, "wdc_webtables_pct": 51.4},
    {"atomic_type": "string", "gittables_pct": 41.6, "wdc_webtables_pct": 47.4},
    {"atomic_type": "other", "gittables_pct": 0.5, "wdc_webtables_pct": 1.2},
]


@register_experiment("table1")
def run_table1(scale: str = "default") -> ExperimentResult:
    """Table 1: corpus comparison (tables, avg rows, avg columns)."""
    context = get_context(scale)
    git_stats = CorpusStatistics.from_projection(context.gittables_projection())
    viz_stats = CorpusStatistics.from_projection(context.viznet_projection())
    rows = [
        viz_stats.as_table1_row(name="VizNet (simulated)", source="HTML pages (simulated)"),
        git_stats.as_table1_row(name="GitTables (reproduced)", source="CSVs from simulated GitHub"),
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Existing large-scale relational table corpora vs GitTables",
        rows=rows,
        paper_reference=_PAPER_TABLE1,
        notes=(
            "Corpora are rebuilt at reduced scale; the relevant shape is that "
            "GitTables tables are an order of magnitude larger than Web tables "
            "in rows and 2-4x wider in columns."
        ),
    )


@register_experiment("table2")
def run_table2(scale: str = "default") -> ExperimentResult:
    """Table 2: annotated-corpus characteristics."""
    context = get_context(scale)
    projection = context.gittables_projection()
    corpus_stats = CorpusStatistics.from_projection(projection)
    annotation_stats = AnnotationStatistics.from_projection(projection)
    annotated_tables = max(
        stats.annotated_tables for stats in annotation_stats.per_method_ontology
    )
    unique_types = annotation_stats.unique_type_count("semantic")
    rows = [
        {
            "dataset": "T2Dv2 (synthetic)",
            "n_tables": len({column.table_id for column in context.t2dv2.columns}),
            "avg_rows": 18,
            "avg_cols": 4,
            "n_types": len({column.gold_type for column in context.t2dv2.columns}),
            "ontology": "DBpedia",
        },
        {
            "dataset": "GitTables (reproduced)",
            "n_tables": annotated_tables,
            "avg_rows": round(corpus_stats.avg_rows, 1),
            "avg_cols": round(corpus_stats.avg_cols, 1),
            "n_types": unique_types,
            "ontology": "DBpedia + Schema.org",
        },
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Characteristics of annotated relational table datasets",
        rows=rows,
        paper_reference=_PAPER_TABLE2,
        notes="GitTables is annotated with far more types than column-annotation benchmarks.",
    )


@register_experiment("table4")
def run_table4(scale: str = "default") -> ExperimentResult:
    """Table 4: atomic data type distribution, GitTables vs Web tables."""
    context = get_context(scale)
    git = CorpusStatistics.from_projection(context.gittables_projection()).as_table4_rows()
    web = CorpusStatistics.from_projection(context.viznet_projection()).as_table4_rows()
    rows = [
        {"atomic_type": bucket, "gittables_pct": git[bucket], "webtables_pct": web[bucket]}
        for bucket in ("numeric", "string", "other")
    ]
    return ExperimentResult(
        experiment_id="table4",
        title="Distribution of atomic data types",
        rows=rows,
        paper_reference=_PAPER_TABLE4,
        notes="GitTables is more numeric than Web tables; 'other' stays marginal.",
    )


@register_experiment("fig4a")
def run_fig4a(scale: str = "default") -> ExperimentResult:
    """Figure 4a: cumulative table counts across table dimensions."""
    context = get_context(scale)
    stats = CorpusStatistics.from_projection(context.gittables_projection())
    rows = []
    for axis in ("rows", "columns"):
        # gittables_projection() attached the projection, so the CDF
        # reads the materialized dimension arrays, not the tables.
        for dimension, cumulative in dimension_cdf(context.gittables, axis=axis, points=25):
            rows.append({"axis": axis, "dimension": dimension, "cumulative_tables": cumulative})
    return ExperimentResult(
        experiment_id="fig4a",
        title="Cumulative table counts across table dimensions",
        rows=rows,
        paper_reference=[{"axis": "rows", "mean": 142}, {"axis": "columns", "mean": 12}],
        notes=(
            f"Long-tailed distributions around mean {stats.avg_rows:.0f} rows x "
            f"{stats.avg_cols:.0f} columns."
        ),
    )
