"""Deterministic randomness helpers.

Everything in the reproduction must be reproducible from a seed, so all
random state is created through this module. A *name-spaced* seed scheme
(``derive_rng``) means independent subsystems (corpus generator, parser
noise, ML initialisation) get uncorrelated but stable streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20230530


def stable_hash(*parts: object, bits: int = 64) -> int:
    """Return a stable non-negative integer hash of ``parts``.

    Python's builtin :func:`hash` is randomised per-process for strings, so
    it cannot be used to derive reproducible seeds. This helper uses
    blake2b instead.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest(), "big") % (2**bits)


def derive_seed(base_seed: int, *namespace: object) -> int:
    """Derive a child seed from ``base_seed`` and a namespace path."""
    return stable_hash(base_seed, *namespace, bits=32)


def derive_rng(base_seed: int, *namespace: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded from a namespace."""
    return np.random.default_rng(derive_seed(base_seed, *namespace))


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a generator seeded with ``seed`` (or the library default)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
