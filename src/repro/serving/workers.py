"""The serving worker pool: N processes over one mmap'd store directory.

Each worker process opens the corpus store directory **read-only** via
:meth:`GitTables.load` and warms its query engines from the store's
fingerprint-guarded index artifacts — one ``np.load(mmap_mode="r")``
per index instead of a corpus-wide re-embed, with the page cache shared
across the whole pool. The parent never ships corpus data to workers:
a task is just ``(batch id, endpoint, compatibility key, payloads)``
and a result is the pickled list of per-request results.

The parent-side :class:`WorkerPool` routes each batch to the
least-loaded live worker, watches for crashed workers (a worker that
died mid-batch is detected on the collector's next idle tick), respawns
them within the configured budget, and re-dispatches a dead worker's
in-flight batches exactly once — a batch orphaned twice fails with
:class:`~repro.errors.WorkerCrashed`. Request futures are resolved by
one collector thread; a result that lands after its request's deadline
resolves to :class:`~repro.errors.DeadlineExceeded` instead.

:class:`LocalExecutor` is the degenerate pool for ``workers=0`` (and
for sessions without a store directory): batches execute inline on the
batcher thread against the parent's own session — still micro-batched,
no processes involved.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
import traceback

from ..errors import ServiceClosed, ServingError, WorkerCrashed
from ..storage.parallel import build_mp_context
from ..storage.sharded import read_store_version
from .batcher import Request
from .endpoints import execute_batch

__all__ = ["LocalExecutor", "WorkerPool"]

#: How long pool construction waits for every worker's ready ack.
STARTUP_TIMEOUT_SECONDS = 120.0

#: Minimum seconds between a worker's store-version probes (one bounded
#: manifest read each) — reload detection latency, not correctness, is
#: at stake.
EPOCH_PROBE_INTERVAL_SECONDS = 0.5


def _serving_worker_main(
    directory: str, worker: int, parent_pid: int, task_queue, result_queue, index_config=None
):
    """Worker process entry point: serve endpoint batches until told to stop.

    Sends ``("ready", worker, pid)`` once the session is loaded and its
    engines are warm, then answers every ``("batch", id, endpoint, key,
    payloads)`` task with ``("ok", worker, id, results, index_stats,
    store_state)`` — or ``("error", worker, id, traceback, None,
    store_state)`` for a failing batch, which does *not* kill the worker
    (one malformed batch must not take down the pool). The piggybacked
    ``index_stats`` element is the session's cumulative ANN-tier
    instrumentation (None when no engine is built) and ``store_state``
    is ``{"epoch": ..., "generation": ..., "reloads": ...}``, so the
    parent's metrics see the tier and store version in use without an
    extra round trip.

    Between batches (and on idle ticks) the worker probes the store
    manifest's epoch and generation counters: when the directory has
    been **extended** (sealed at a newer epoch than the session was
    loaded from) the session is reloaded — warming from the
    delta-refreshed artifacts, or delta-refreshing them itself when it
    wins the race; when it has been **compacted** (layout generation
    bumped, same content fingerprint) the reload re-opens the new shard
    layout over the *same* mmap'd artifacts, so no embedding work
    happens at all. Either way a long-lived pool follows the store
    without a restart. Exits on the ``None`` sentinel or when the
    parent dies.
    """

    def leave():
        # Never block process exit on flushing acks nobody will read
        # (same rationale as the build workers).
        result_queue.cancel_join_thread()

    try:
        from ..api import GitTables

        session = GitTables.load(directory, index_config=index_config)
        # Warm the served engines now — resolved from mmap'd artifacts
        # when the store holds valid ones — so the first request does
        # not pay the build cost.
        _ = session.search_engine
        _ = session.completer
        epoch, _sealed, generation = read_store_version(directory)
    except Exception:
        result_queue.put(("error", worker, None, traceback.format_exc(), None, None))
        return leave()
    result_queue.put(("ready", worker, os.getpid()))
    memo: dict = {}
    reloads = 0
    last_probe = time.monotonic()

    def maybe_reload():
        """Reload when the store sealed a newer epoch or re-sharded."""
        nonlocal session, epoch, generation, reloads, last_probe
        now = time.monotonic()
        if now - last_probe < EPOCH_PROBE_INTERVAL_SECONDS:
            return
        last_probe = now
        try:
            current, sealed, current_generation = read_store_version(directory)
            if not sealed or (current <= epoch and current_generation == generation):
                return
            fresh = GitTables.load(directory, index_config=index_config)
            _ = fresh.search_engine
            _ = fresh.completer
        except Exception:
            return  # keep serving the current view; retry next probe
        session = fresh
        memo.clear()  # memoized results may describe the older view
        epoch = current
        generation = current_generation
        reloads += 1

    while True:
        try:
            task = task_queue.get(timeout=0.5)
        except queue_module.Empty:
            if os.getppid() != parent_pid:
                return leave()  # orphaned by a dead parent
            maybe_reload()
            continue
        if task is None:
            return leave()
        maybe_reload()
        store_state = {"epoch": epoch, "generation": generation, "reloads": reloads}
        _, batch_id, endpoint, key, payloads = task
        try:
            results = execute_batch(session, endpoint, key, payloads, memo=memo)
            result_queue.put(
                ("ok", worker, batch_id, results, session.index_stats() or None, store_state)
            )
        except Exception:
            result_queue.put(
                ("error", worker, batch_id, traceback.format_exc(), None, store_state)
            )


class LocalExecutor:
    """Inline batch execution against the parent's own session."""

    def __init__(self, session, resolve, on_stats=None) -> None:
        self._session = session
        self._resolve = resolve
        self._on_stats = on_stats
        self._memo: dict = {}

    def dispatch(self, requests: list[Request]) -> None:
        first = requests[0]
        try:
            results = execute_batch(
                self._session,
                first.endpoint,
                first.key,
                [request.payload for request in requests],
                memo=self._memo,
            )
        except Exception as error:
            for request in requests:
                self._resolve(request, error=error)
            return
        if self._on_stats is not None:
            stats = self._session.index_stats()
            if stats:
                self._on_stats("local", stats)
        for request, result in zip(requests, results):
            self._resolve(request, result=result)

    def drain(self, timeout: float) -> bool:
        return True  # dispatch is synchronous; nothing is ever in flight

    def close(self) -> None:
        pass

    def worker_pids(self) -> list[int]:
        return []

    def worker_info(self) -> dict:
        return {"configured": 0, "alive": 0}


class _WorkerHandle:
    """Parent-side state for one worker slot (survives respawns)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.task_queue = None
        self.pid: int | None = None
        self.load = 0
        self.dead = False


class _Batch:
    """One dispatched compatibility group awaiting its result."""

    def __init__(self, batch_id: int, requests: list[Request], worker: int) -> None:
        self.batch_id = batch_id
        self.requests = requests
        self.worker = worker
        self.retried = False


class WorkerPool:
    """N serving processes plus the dispatcher/collector glue.

    ``resolve`` is the service's resolution callback
    (``resolve(request, result=..., error=...)``); the pool guarantees
    every dispatched request is eventually resolved exactly once —
    normally, with the endpoint result, or with
    :class:`~repro.errors.WorkerCrashed` when the retry budget is spent.
    """

    def __init__(
        self,
        directory: str,
        workers: int,
        resolve,
        max_respawns: int = 3,
        on_crash=None,
        on_stats=None,
        on_store=None,
        index_config=None,
        mp_context=None,
    ) -> None:
        self._directory = str(directory)
        self._resolve = resolve
        self._max_respawns = max_respawns
        self._on_crash = on_crash
        self._on_stats = on_stats
        self._on_store = on_store
        self._index_config = index_config
        self._mp = mp_context if mp_context is not None else build_mp_context()
        self._result_queue = self._mp.Queue()
        self._lock = threading.Lock()
        self._batches: dict[int, _Batch] = {}
        self._next_batch_id = 0
        self._respawns_used = 0
        self._closed = False
        self._workers = [_WorkerHandle(index) for index in range(workers)]
        for handle in self._workers:
            self._start_worker(handle)
        self._await_ready()
        self._collector = threading.Thread(
            target=self._collect, name="gittables-serve-collector", daemon=True
        )
        self._collector.start()

    # -- worker lifecycle --------------------------------------------------

    def _start_worker(self, handle: _WorkerHandle) -> None:
        handle.task_queue = self._mp.Queue()
        handle.process = self._mp.Process(
            target=_serving_worker_main,
            args=(
                self._directory,
                handle.index,
                os.getpid(),
                handle.task_queue,
                self._result_queue,
                self._index_config,
            ),
            daemon=True,
            name=f"gittables-serve-w{handle.index:02d}",
        )
        handle.dead = False
        handle.pid = None
        handle.load = 0
        handle.process.start()

    def _await_ready(self) -> None:
        """Block until every worker acked readiness (or one failed to load)."""
        pending = {handle.index for handle in self._workers}
        deadline = time.monotonic() + STARTUP_TIMEOUT_SECONDS
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise ServingError(
                    f"serving workers {sorted(pending)} did not become ready in time"
                )
            try:
                message = self._result_queue.get(timeout=min(remaining, 0.5))
            except queue_module.Empty:
                for index in list(pending):
                    if not self._workers[index].process.is_alive():
                        self.close()
                        raise ServingError(f"serving worker {index} died during startup")
                continue
            if message[0] == "error":
                self.close()
                raise ServingError(f"serving worker {message[1]} failed to start:\n{message[3]}")
            if message[0] == "ready":
                _, index, pid = message
                self._workers[index].pid = pid
                pending.discard(index)

    def worker_pids(self) -> list[int]:
        with self._lock:
            return [handle.pid for handle in self._workers if not handle.dead and handle.pid]

    def worker_info(self) -> dict:
        with self._lock:
            return {
                "configured": len(self._workers),
                "alive": sum(
                    1
                    for handle in self._workers
                    if not handle.dead and handle.process is not None
                ),
            }

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, requests: list[Request]) -> None:
        """Route one compatibility group to the least-loaded live worker."""
        first = requests[0]
        with self._lock:
            target = self._least_loaded_locked()
            if target is None:
                error = WorkerCrashed("no live serving workers remain")
                batch = None
            else:
                error = None
                batch = _Batch(self._next_batch_id, requests, target.index)
                self._next_batch_id += 1
                self._batches[batch.batch_id] = batch
                target.load += len(requests)
        if error is not None:
            for request in requests:
                self._resolve(request, error=error)
            return
        self._send(target, batch)

    def _send(self, target: _WorkerHandle, batch: _Batch) -> None:
        """Enqueue one registered batch on a worker's task queue.

        ``put`` can raise — the queue is full, or its feeder is gone
        because the worker crashed and was torn down. Swallowing that
        would strand every future in the batch until its deadline (the
        worker never saw the task, so no result can ever arrive).
        Instead the failure is handled exactly like an orphaned batch of
        a crashed worker: unregister, retry once on another worker (the
        rejecting one only when no other is live), then fail with
        :class:`~repro.errors.WorkerCrashed`.
        """
        first = batch.requests[0]
        try:
            target.task_queue.put(
                ("batch", batch.batch_id, first.endpoint, first.key,
                 [request.payload for request in batch.requests])
            )
            return
        except Exception:
            pass
        with self._lock:
            owned = self._batches.pop(batch.batch_id, None) is not None
            if owned:
                target.load -= len(batch.requests)
        if not owned:
            # Crash handling already claimed this batch (and will
            # re-dispatch or fail it); a second owner would double-resolve.
            return
        if batch.retried:
            error = WorkerCrashed(
                f"serving worker {target.index} rejected this request's batch "
                f"twice (task queue full or closed)"
            )
            for request in batch.requests:
                self._resolve(request, error=error)
            return
        batch.retried = True
        self._redispatch(batch, exclude=target.index)

    def _least_loaded_locked(self, exclude: int | None = None):
        live = [h for h in self._workers if not h.dead and h.process is not None]
        if exclude is not None and len(live) > 1:
            live = [h for h in live if h.index != exclude]
        if not live:
            return None
        return min(live, key=lambda handle: (handle.load, handle.index))

    # -- collection --------------------------------------------------------

    def _collect(self) -> None:
        while True:
            try:
                message = self._result_queue.get(timeout=0.2)
            except queue_module.Empty:
                if self._closed and not self._batches:
                    return
                self._check_liveness()
                continue
            kind = message[0]
            if kind == "ready":
                _, index, pid = message
                with self._lock:
                    self._workers[index].pid = pid
                continue
            _, worker, batch_id, body, index_stats, store_state = message
            if index_stats is not None and self._on_stats is not None:
                self._on_stats(f"worker-{worker:02d}", index_stats)
            if store_state is not None and self._on_store is not None:
                self._on_store(f"worker-{worker:02d}", store_state)
            if batch_id is None:
                continue  # init failure of a respawn; liveness check handles it
            with self._lock:
                batch = self._batches.pop(batch_id, None)
                if batch is not None:
                    self._workers[batch.worker].load -= len(batch.requests)
            if batch is None:
                continue  # duplicate result for a re-dispatched batch
            if kind == "ok":
                for request, result in zip(batch.requests, body):
                    self._resolve(request, result=result)
            else:
                error = ServingError(f"serving worker {worker} failed a batch:\n{body}")
                for request in batch.requests:
                    self._resolve(request, error=error)

    def _check_liveness(self) -> None:
        """Respawn crashed workers and re-dispatch their orphaned batches."""
        crashed = []
        with self._lock:
            for handle in self._workers:
                if handle.dead or handle.process is None:
                    continue
                if not handle.process.is_alive():
                    handle.dead = True
                    crashed.append(handle)
        for handle in crashed:
            self._handle_crash(handle)

    def _handle_crash(self, handle: _WorkerHandle) -> None:
        with self._lock:
            orphaned = [
                batch for batch in self._batches.values() if batch.worker == handle.index
            ]
            for batch in orphaned:
                del self._batches[batch.batch_id]
            handle.load = 0
            respawn = not self._closed and self._respawns_used < self._max_respawns
            if respawn:
                self._respawns_used += 1
        if respawn:
            # Abandon the dead worker's task queue (anything it never
            # picked up is re-dispatched below; the old process cannot
            # produce results, so nothing can double-resolve).
            handle.task_queue.cancel_join_thread()
            self._start_worker(handle)
        # Counters flip only after the replacement handle is live, so a
        # metrics snapshot never reports a respawn with zero alive workers.
        if self._on_crash is not None:
            self._on_crash(respawned=respawn)
        failures, retries = [], []
        for batch in orphaned:
            (failures if batch.retried else retries).append(batch)
        for batch in retries:
            # One retry per batch: requests are read-only queries, so
            # re-running them is safe; a second orphaning means the
            # requests themselves are implicated, so they fail instead.
            batch.retried = True
            self._redispatch(batch)
        for batch in failures:
            error = WorkerCrashed(
                f"serving worker {handle.index} died twice while running this request"
            )
            for request in batch.requests:
                self._resolve(request, error=error)

    def _redispatch(self, batch: _Batch, exclude: int | None = None) -> None:
        with self._lock:
            target = self._least_loaded_locked(exclude=exclude)
            if target is not None:
                batch.worker = target.index
                self._batches[batch.batch_id] = batch
                target.load += len(batch.requests)
        if target is None:
            error = WorkerCrashed("no live serving workers remain")
            for request in batch.requests:
                self._resolve(request, error=error)
            return
        self._send(target, batch)

    # -- shutdown ----------------------------------------------------------

    def drain(self, timeout: float) -> bool:
        """Wait until no batch is in flight; False if ``timeout`` elapsed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._batches:
                    return True
            time.sleep(0.02)
        with self._lock:
            return not self._batches

    def close(self) -> None:
        """Stop every worker and the collector; fail anything still in flight."""
        self._closed = True
        for handle in self._workers:
            if handle.task_queue is not None:
                try:
                    handle.task_queue.put_nowait(None)
                except Exception:  # pragma: no cover - full/closed queue
                    pass
        deadline = time.monotonic() + 10.0
        for handle in self._workers:
            process = handle.process
            if process is None:
                continue
            while process.is_alive() and time.monotonic() < deadline:
                process.join(timeout=0.2)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=2.0)
        collector = getattr(self, "_collector", None)
        if collector is not None and collector.is_alive():
            collector.join(timeout=5.0)
        with self._lock:
            stranded = list(self._batches.values())
            self._batches.clear()
        error = ServiceClosed("service closed before the batch resolved")
        for batch in stranded:
            for request in batch.requests:
                self._resolve(request, error=error)
        for handle in self._workers:
            if handle.task_queue is not None:
                handle.task_queue.cancel_join_thread()
        self._result_queue.cancel_join_thread()
