"""Thread-safe counters and latency reservoirs for the query service.

One :class:`ServiceMetrics` instance per service, shared by the
admission path (submitter threads), the micro-batcher and the result
collector. Everything is folded into plain counters/deques under one
lock so :meth:`ServiceMetrics.snapshot` can render a complete picture —
per-endpoint QPS, batch-size histogram, queue depth and latency
percentiles — without stopping the service.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["ServiceMetrics"]

#: Latency percentiles reported by snapshots.
PERCENTILES = (50, 95, 99)


def _percentile(ordered: list[float], q: int) -> float:
    """The ``q``-th percentile of a sorted sample (nearest-rank)."""
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[index]


def _histogram_bucket(size: int) -> int:
    """The power-of-two bucket (upper bound) a batch size falls in."""
    return 1 << max(0, size - 1).bit_length()


class _EndpointStats:
    """Mutable per-endpoint counters (guarded by the owning metrics lock)."""

    def __init__(self, latency_samples: int) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.deadline_expired = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0
        #: batch-size bucket (power-of-two upper bound) -> dispatch count.
        self.batch_histogram: dict[int, int] = {}
        self.latencies: deque[float] = deque(maxlen=latency_samples)
        self.first_submitted_at: float | None = None
        self.last_resolved_at: float | None = None


class ServiceMetrics:
    """Counters, gauges and reservoirs behind ``QueryService.metrics()``."""

    def __init__(self, latency_samples: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latency_samples = latency_samples
        self._endpoints: dict[str, _EndpointStats] = {}
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._worker_crashes = 0
        self._worker_respawns = 0
        self._started_at = time.monotonic()

    def _endpoint(self, endpoint: str) -> _EndpointStats:
        stats = self._endpoints.get(endpoint)
        if stats is None:
            stats = self._endpoints[endpoint] = _EndpointStats(self._latency_samples)
        return stats

    # -- recording ---------------------------------------------------------

    def record_submitted(self, endpoint: str, queue_depth: int) -> None:
        with self._lock:
            stats = self._endpoint(endpoint)
            stats.submitted += 1
            if stats.first_submitted_at is None:
                stats.first_submitted_at = time.monotonic()
            self._queue_depth = queue_depth
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)

    def record_rejected(self, endpoint: str) -> None:
        with self._lock:
            self._endpoint(endpoint).rejected += 1

    def record_batch(self, endpoint: str, size: int) -> None:
        with self._lock:
            stats = self._endpoint(endpoint)
            stats.batches += 1
            stats.batched_requests += size
            bucket = _histogram_bucket(size)
            stats.batch_histogram[bucket] = stats.batch_histogram.get(bucket, 0) + 1

    def _resolved(self, endpoint: str, queue_depth: int) -> _EndpointStats:
        stats = self._endpoint(endpoint)
        stats.last_resolved_at = time.monotonic()
        self._queue_depth = queue_depth
        return stats

    def record_completed(self, endpoint: str, latency_s: float, queue_depth: int) -> None:
        with self._lock:
            stats = self._resolved(endpoint, queue_depth)
            stats.completed += 1
            stats.latencies.append(latency_s)

    def record_deadline_expired(self, endpoint: str, queue_depth: int) -> None:
        with self._lock:
            self._resolved(endpoint, queue_depth).deadline_expired += 1

    def record_failed(self, endpoint: str, queue_depth: int) -> None:
        with self._lock:
            self._resolved(endpoint, queue_depth).failed += 1

    def record_worker_crash(self, respawned: bool) -> None:
        with self._lock:
            self._worker_crashes += 1
            if respawned:
                self._worker_respawns += 1

    # -- reporting ---------------------------------------------------------

    def snapshot(self, queue_limit: int | None = None, workers: dict | None = None) -> dict:
        """A point-in-time picture of the whole service, as plain data."""
        with self._lock:
            endpoints: dict[str, dict] = {}
            for name in sorted(self._endpoints):
                stats = self._endpoints[name]
                ordered = sorted(stats.latencies)
                window = None
                if stats.first_submitted_at is not None and stats.last_resolved_at is not None:
                    window = max(stats.last_resolved_at - stats.first_submitted_at, 1e-9)
                endpoints[name] = {
                    "submitted": stats.submitted,
                    "completed": stats.completed,
                    "rejected": stats.rejected,
                    "deadline_expired": stats.deadline_expired,
                    "failed": stats.failed,
                    "qps": (stats.completed / window) if window else 0.0,
                    "batches": stats.batches,
                    "mean_batch_size": (
                        stats.batched_requests / stats.batches if stats.batches else 0.0
                    ),
                    "batch_size_histogram": {
                        str(bucket): stats.batch_histogram[bucket]
                        for bucket in sorted(stats.batch_histogram)
                    },
                    "latency_ms": {
                        **{
                            f"p{q}": _percentile(ordered, q) * 1000.0
                            for q in PERCENTILES
                        },
                        "mean": (sum(ordered) / len(ordered) * 1000.0) if ordered else 0.0,
                        "max": (ordered[-1] * 1000.0) if ordered else 0.0,
                        "samples": len(ordered),
                    },
                }
            snapshot = {
                "uptime_seconds": time.monotonic() - self._started_at,
                "queue": {
                    "depth": self._queue_depth,
                    "max_depth": self._max_queue_depth,
                    "limit": queue_limit,
                },
                "workers": {
                    **(workers or {}),
                    "crashes": self._worker_crashes,
                    "respawns": self._worker_respawns,
                },
                "endpoints": endpoints,
            }
        return snapshot
