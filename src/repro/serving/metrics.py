"""Thread-safe counters and latency reservoirs for the query service.

One :class:`ServiceMetrics` instance per service, shared by the
admission path (submitter threads), the micro-batcher and the result
collector. Everything is folded into plain counters/deques under one
lock so :meth:`ServiceMetrics.snapshot` can render a complete picture —
per-endpoint QPS, batch-size histogram, queue depth and latency
percentiles — without stopping the service.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["ServiceMetrics"]

#: Latency percentiles reported by snapshots.
PERCENTILES = (50, 95, 99)


def _percentile(ordered: list[float], q: int) -> float:
    """The ``q``-th percentile of a sorted sample (nearest-rank)."""
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[index]


def _histogram_bucket(size: int) -> int:
    """The power-of-two bucket (upper bound) a batch size falls in."""
    return 1 << max(0, size - 1).bit_length()


class _EndpointStats:
    """Mutable per-endpoint counters (guarded by the owning metrics lock)."""

    def __init__(self, latency_samples: int) -> None:
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.deadline_expired = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0
        #: batch-size bucket (power-of-two upper bound) -> dispatch count.
        self.batch_histogram: dict[int, int] = {}
        self.latencies: deque[float] = deque(maxlen=latency_samples)
        self.first_submitted_at: float | None = None
        self.last_resolved_at: float | None = None


class ServiceMetrics:
    """Counters, gauges and reservoirs behind ``QueryService.metrics()``."""

    def __init__(self, latency_samples: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latency_samples = latency_samples
        self._endpoints: dict[str, _EndpointStats] = {}
        self._queue_depth = 0
        self._max_queue_depth = 0
        self._worker_crashes = 0
        self._worker_respawns = 0
        #: source ("local" / "worker-00" / ...) -> latest index_stats()
        #: dict reported by that executor (engine -> tier stats).
        self._index_stats: dict[str, dict] = {}
        #: source -> latest {"epoch": ..., "generation": ..., "reloads":
        #: ...} store state piggybacked by that worker (epoch and layout
        #: generation it serves, cumulative reloads after store
        #: extensions or compactions).
        self._worker_store: dict[str, dict] = {}
        self._started_at = time.monotonic()

    def _endpoint(self, endpoint: str) -> _EndpointStats:
        stats = self._endpoints.get(endpoint)
        if stats is None:
            stats = self._endpoints[endpoint] = _EndpointStats(self._latency_samples)
        return stats

    # -- recording ---------------------------------------------------------

    def record_submitted(self, endpoint: str, queue_depth: int) -> None:
        with self._lock:
            stats = self._endpoint(endpoint)
            stats.submitted += 1
            if stats.first_submitted_at is None:
                stats.first_submitted_at = time.monotonic()
            self._queue_depth = queue_depth
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)

    def record_rejected(self, endpoint: str) -> None:
        with self._lock:
            self._endpoint(endpoint).rejected += 1

    def record_batch(self, endpoint: str, size: int) -> None:
        with self._lock:
            stats = self._endpoint(endpoint)
            stats.batches += 1
            stats.batched_requests += size
            bucket = _histogram_bucket(size)
            stats.batch_histogram[bucket] = stats.batch_histogram.get(bucket, 0) + 1

    def _resolved(self, endpoint: str, queue_depth: int) -> _EndpointStats:
        stats = self._endpoint(endpoint)
        stats.last_resolved_at = time.monotonic()
        self._queue_depth = queue_depth
        return stats

    def record_completed(self, endpoint: str, latency_s: float, queue_depth: int) -> None:
        with self._lock:
            stats = self._resolved(endpoint, queue_depth)
            stats.completed += 1
            stats.latencies.append(latency_s)

    def record_deadline_expired(self, endpoint: str, queue_depth: int) -> None:
        with self._lock:
            self._resolved(endpoint, queue_depth).deadline_expired += 1

    def record_failed(self, endpoint: str, queue_depth: int) -> None:
        with self._lock:
            self._resolved(endpoint, queue_depth).failed += 1

    def record_worker_crash(self, respawned: bool) -> None:
        with self._lock:
            self._worker_crashes += 1
            if respawned:
                self._worker_respawns += 1

    def record_index_stats(self, source: str, stats: dict) -> None:
        """Store one executor's latest index-tier snapshot.

        ``stats`` is a :meth:`GitTables.index_stats`-shaped dict (engine
        name -> tier stats). Each worker's counters are cumulative, so
        only the latest report per source is kept; :meth:`snapshot`
        merges across sources.
        """
        with self._lock:
            self._index_stats[source] = stats

    def record_worker_store(self, source: str, state: dict) -> None:
        """Store one worker's latest store-version report.

        ``state`` is ``{"epoch": ..., "generation": ..., "reloads":
        ...}``: the store epoch and shard-layout generation the worker's
        session currently serves, plus its cumulative count of reloads
        triggered by store extensions or online compactions.
        Cumulative, so only the latest report per source is kept.
        """
        with self._lock:
            self._worker_store[source] = state

    @staticmethod
    def _merged_index_stats(per_source: dict[str, dict]) -> dict:
        """Fold per-worker cumulative index stats into one view per engine."""
        merged: dict[str, dict] = {}
        for source in sorted(per_source):
            for engine, stats in per_source[source].items():
                current = merged.get(engine)
                if current is None:
                    current = merged[engine] = dict(stats)
                    current["probed_partitions"] = dict(stats.get("probed_partitions", {}))
                    continue
                for key in ("queries", "candidate_rows"):
                    if key in stats:
                        current[key] = current.get(key, 0) + stats[key]
                for bucket, count in stats.get("probed_partitions", {}).items():
                    histogram = current["probed_partitions"]
                    histogram[bucket] = histogram.get(bucket, 0) + count
        for current in merged.values():
            if current.get("tier") != "partitioned":
                current.pop("probed_partitions", None)
                continue
            queries = current.get("queries", 0)
            rows = current.get("rows", 0)
            current["mean_candidate_fraction"] = (
                current.get("candidate_rows", 0) / (queries * rows) if queries and rows else 0.0
            )
        return merged

    # -- reporting ---------------------------------------------------------

    def snapshot(
        self,
        queue_limit: int | None = None,
        workers: dict | None = None,
        store_epoch: int | None = None,
        store_generation: int | None = None,
    ) -> dict:
        """A point-in-time picture of the whole service, as plain data.

        ``store_epoch`` and ``store_generation`` are the parent's
        current view of the backing store's sealed epoch and shard
        layout generation (None without a store directory); the
        ``workers`` section additionally reports each worker's served
        epoch/generation and cumulative reload count, so an in-flight
        store extension (or online compaction) is visible as parent
        epoch (generation) ahead of worker epochs (generations) until
        every worker has reloaded.
        """
        with self._lock:
            endpoints: dict[str, dict] = {}
            for name in sorted(self._endpoints):
                stats = self._endpoints[name]
                ordered = sorted(stats.latencies)
                window = None
                if stats.first_submitted_at is not None and stats.last_resolved_at is not None:
                    window = max(stats.last_resolved_at - stats.first_submitted_at, 1e-9)
                endpoints[name] = {
                    "submitted": stats.submitted,
                    "completed": stats.completed,
                    "rejected": stats.rejected,
                    "deadline_expired": stats.deadline_expired,
                    "failed": stats.failed,
                    "qps": (stats.completed / window) if window else 0.0,
                    "batches": stats.batches,
                    "mean_batch_size": (
                        stats.batched_requests / stats.batches if stats.batches else 0.0
                    ),
                    "batch_size_histogram": {
                        str(bucket): stats.batch_histogram[bucket]
                        for bucket in sorted(stats.batch_histogram)
                    },
                    "latency_ms": {
                        **{
                            f"p{q}": _percentile(ordered, q) * 1000.0
                            for q in PERCENTILES
                        },
                        "mean": (sum(ordered) / len(ordered) * 1000.0) if ordered else 0.0,
                        "max": (ordered[-1] * 1000.0) if ordered else 0.0,
                        "samples": len(ordered),
                    },
                }
            snapshot = {
                "uptime_seconds": time.monotonic() - self._started_at,
                "queue": {
                    "depth": self._queue_depth,
                    "max_depth": self._max_queue_depth,
                    "limit": queue_limit,
                },
                "workers": {
                    **(workers or {}),
                    "crashes": self._worker_crashes,
                    "respawns": self._worker_respawns,
                    "store_epoch": store_epoch,
                    "store_generation": store_generation,
                    "epochs": {
                        source: state.get("epoch")
                        for source, state in sorted(self._worker_store.items())
                    },
                    "generations": {
                        source: state.get("generation", 1)
                        for source, state in sorted(self._worker_store.items())
                    },
                    "artifact_reloads": {
                        source: state.get("reloads", 0)
                        for source, state in sorted(self._worker_store.items())
                    },
                },
                "index": self._merged_index_stats(self._index_stats),
                "endpoints": endpoints,
            }
        return snapshot
