"""Endpoint batch execution, shared by worker processes and local mode.

Each served endpoint knows three things: how to *validate and
canonicalize* a payload at admission time (so a malformed request is
rejected in the submitter's thread instead of poisoning a whole batch),
which **compatibility key** it batches under, and how to *execute* a
group of same-key payloads against one :class:`~repro.api.GitTables`
session in a single pass through the existing batch kernels:

``search``
    key ``("search", k)`` — the whole group resolves through one
    :meth:`~repro.api.GitTables.search_batch` call (one batched embed +
    one batched nearest-neighbour query).
``complete_schema``
    key ``("complete_schema", k)`` — every distinct attribute across the
    group is embedded in one ``embed_many`` call (warming the encoder's
    content-keyed cache), then each prefix completes individually from
    cached vectors. Per-string embeddings are bit-identical alone or in
    any batch, so results equal single-shot ``complete_schema`` calls.
``detect_types``
    key ``("detect_types", <canonical options>)`` — the experiment is a
    deterministic function of (corpus, options), so one run per group
    answers every request in it, and a per-session memo answers repeats
    across windows without re-training.
"""

from __future__ import annotations

from ..errors import ServingError

__all__ = ["ENDPOINTS", "canonicalize", "execute_batch"]

#: Option value types accepted by ``detect_types`` payloads (must be
#: hashable for the compatibility key and picklable for dispatch).
_OPTION_SCALARS = (str, int, float, bool, type(None))


def _canonical_search(payload, k) -> tuple[tuple, object]:
    query, = payload
    if not isinstance(query, str) or not query.strip():
        raise ServingError("search requires a non-empty query string")
    k = int(k)
    if k < 1:
        raise ServingError("search requires k >= 1")
    return ("search", k), query


def _canonical_complete(payload, k) -> tuple[tuple, object]:
    prefix, = payload
    if isinstance(prefix, str):
        raise ServingError("complete_schema requires a sequence of attribute names")
    prefix = tuple(prefix)
    if not prefix or not all(isinstance(name, str) for name in prefix):
        raise ServingError("complete_schema requires a non-empty tuple of strings")
    k = int(k)
    if k < 1:
        raise ServingError("complete_schema requires k >= 1")
    return ("complete_schema", k), prefix


def _canonical_option(value):
    if isinstance(value, _OPTION_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_option(item) for item in value)
    raise ServingError(
        f"detect_types option values must be scalars or sequences, got {type(value).__name__}"
    )


def _canonical_detect(payload, k) -> tuple[tuple, object]:
    options, = payload
    if not isinstance(options, dict):
        raise ServingError("detect_types requires an options dict")
    if "artifacts" in options or "eval_corpus" in options:
        raise ServingError("detect_types over a service cannot override corpus or artifacts")
    canonical = tuple(
        (str(name), _canonical_option(value)) for name, value in sorted(options.items())
    )
    return ("detect_types", canonical), canonical


def _run_search(session, key, payloads):
    _, k = key
    return session.search_batch(list(payloads), k=k)


def _run_complete(session, key, payloads):
    _, k = key
    distinct = list(dict.fromkeys(name for prefix in payloads for name in prefix))
    # One batched embed warms the encoder's content-keyed cache; the
    # per-prefix completions below then reuse those exact vectors.
    session.encoder.embed_many(distinct)
    return [session.complete_schema(list(prefix), k=k) for prefix in payloads]


def _run_detect(session, key, payloads, memo=None):
    _, canonical = key
    result = memo.get(canonical) if memo is not None else None
    if result is None:
        result = session.detect_types(**{name: value for name, value in canonical})
        if memo is not None:
            memo[canonical] = result
    return [result for _ in payloads]


#: endpoint name -> (canonicalize(payload_args, k) -> (key, payload),
#:                   execute(session, key, payloads, memo) -> results).
ENDPOINTS = {
    "search": (_canonical_search, _run_search),
    "complete_schema": (_canonical_complete, _run_complete),
    "detect_types": (_canonical_detect, _run_detect),
}


def canonicalize(endpoint: str, payload_args: tuple, k: int | None = None) -> tuple[tuple, object]:
    """Validate a request and derive its ``(compatibility key, payload)``."""
    try:
        validator, _ = ENDPOINTS[endpoint]
    except KeyError:
        raise ServingError(f"unknown endpoint {endpoint!r}") from None
    return validator(payload_args, k)


def execute_batch(session, endpoint: str, key: tuple, payloads: list, memo: dict | None = None):
    """Run one compatibility group against a session; one result per payload."""
    _, runner = ENDPOINTS[endpoint]
    if endpoint == "detect_types":
        return runner(session, key, payloads, memo=memo)
    return runner(session, key, payloads)
