"""The concurrent query service fronting one :class:`GitTables` session.

::

    dispatcher (submit/admission)
        └─> micro-batcher (window: max_batch / max_wait_ms)
              └─> worker pool (least-loaded routing, respawn)
                    └─> N processes, each mmap'ing the store's artifacts

:class:`QueryService` is what :meth:`GitTables.serve` returns. Callers
submit requests from any number of threads; admission is bounded (a
full queue rejects with :class:`~repro.errors.ServiceOverloaded`
instead of growing without limit), every request carries a deadline,
and results are delivered through per-request futures — bit-identical
to the same single-shot call on a lone session, because every kernel on
the batched path guarantees batch-size independence.

The blocking conveniences (:meth:`search`, :meth:`complete_schema`,
:meth:`detect_types`) are submit-plus-wait; concurrent callers get
coalesced into shared kernel batches automatically.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

from ..config import ServingConfig
from ..errors import DeadlineExceeded, ServiceClosed, ServiceOverloaded, ServingError
from ..storage.sharded import read_store_version
from .batcher import MicroBatcher, Request
from .endpoints import canonicalize
from .metrics import ServiceMetrics
from .workers import LocalExecutor, WorkerPool

__all__ = ["QueryService"]


class QueryService:
    """A micro-batched, multi-worker query service over one session.

    Not constructed directly in normal use — :meth:`GitTables.serve`
    builds one, choosing between the process worker pool (store-backed
    sessions) and in-process execution (``workers=0``).
    """

    def __init__(
        self,
        session,
        config: ServingConfig | None = None,
        directory=None,
        mp_context=None,
    ) -> None:
        self.config = config or ServingConfig()
        self._session = session
        self._directory = str(directory) if directory is not None else None
        self._metrics = ServiceMetrics(latency_samples=self.config.latency_samples)
        self._lock = threading.Lock()
        self._inflight = 0
        self._next_seq = 0
        self._closed = False
        if self.config.workers > 0:
            if directory is None:
                raise ServingError(
                    "process serving workers need a sharded store directory; "
                    "save() the corpus first or serve with workers=0"
                )
            self._executor = WorkerPool(
                directory=str(directory),
                workers=self.config.workers,
                resolve=self._resolve,
                max_respawns=self.config.max_respawns,
                on_crash=self._metrics.record_worker_crash,
                on_stats=self._metrics.record_index_stats,
                on_store=self._metrics.record_worker_store,
                index_config=self.config.index,
                mp_context=mp_context,
            )
        else:
            self._executor = LocalExecutor(
                session, resolve=self._resolve, on_stats=self._metrics.record_index_stats
            )
        self._batcher = MicroBatcher(
            dispatch=self._dispatch,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
        )

    # -- submission --------------------------------------------------------

    def submit_search(self, query: str, k: int = 10, timeout: float | None = None) -> Future:
        """Admit one search request; resolves to ``list[SearchResult]``."""
        return self._submit("search", (query,), k=k, timeout=timeout)

    def submit_complete_schema(
        self, prefix, k: int = 10, timeout: float | None = None
    ) -> Future:
        """Admit one completion request; resolves to ``list[SchemaCompletion]``."""
        return self._submit("complete_schema", (prefix,), k=k, timeout=timeout)

    def submit_detect_types(self, timeout: float | None = None, **options) -> Future:
        """Admit one type-detection request; resolves to a ``TypeDetectionResult``."""
        return self._submit("detect_types", (options,), timeout=timeout)

    def _submit(self, endpoint: str, payload_args: tuple, k=None, timeout=None) -> Future:
        # Validation runs here, in the submitter's thread, so a bad
        # payload raises at the call site and can never poison a batch.
        key, payload = canonicalize(endpoint, payload_args, k)
        if timeout is None:
            timeout = self.config.default_timeout_s
        with self._lock:
            if self._closed:
                raise ServiceClosed("the service is closed")
            if self._inflight >= self.config.max_queue:
                self._metrics.record_rejected(endpoint)
                raise ServiceOverloaded(
                    f"{self._inflight} requests in flight (limit {self.config.max_queue})"
                )
            self._inflight += 1
            seq = self._next_seq
            self._next_seq += 1
            depth = self._inflight
        now = time.monotonic()
        request = Request(
            seq=seq,
            endpoint=endpoint,
            key=key,
            payload=payload,
            future=Future(),
            submitted_at=now,
            deadline=now + timeout,
        )
        self._metrics.record_submitted(endpoint, queue_depth=depth)
        self._batcher.submit(request)
        return request.future

    # -- blocking conveniences ---------------------------------------------

    def _wait(self, future: Future, timeout: float | None):
        if timeout is None:
            timeout = self.config.default_timeout_s
        try:
            # Slack on top of the request deadline: the resolver is the
            # authority on expiry; this wait is just a backstop.
            return future.result(timeout=timeout + 1.0)
        except FutureTimeoutError:
            raise DeadlineExceeded("timed out waiting for the request result") from None

    def search(self, query: str, k: int = 10, timeout: float | None = None):
        """Blocking search through the service (coalesced when concurrent)."""
        return self._wait(self.submit_search(query, k=k, timeout=timeout), timeout)

    def complete_schema(self, prefix, k: int = 10, timeout: float | None = None):
        """Blocking schema completion through the service."""
        return self._wait(self.submit_complete_schema(prefix, k=k, timeout=timeout), timeout)

    def detect_types(self, timeout: float | None = None, **options):
        """Blocking type detection through the service (memoized per options)."""
        return self._wait(self.submit_detect_types(timeout=timeout, **options), timeout)

    # -- internals ---------------------------------------------------------

    def _dispatch(self, requests: list) -> None:
        """Batcher callback: one compatibility group ready for execution."""
        self._metrics.record_batch(requests[0].endpoint, len(requests))
        self._executor.dispatch(requests)

    def _resolve(self, request, result=None, error=None) -> None:
        """Resolve one request exactly once, enforcing its deadline."""
        future = request.future
        with self._lock:
            if request.resolved:
                return
            request.resolved = True
            self._inflight -= 1
            depth = self._inflight
        now = time.monotonic()
        if error is not None:
            self._metrics.record_failed(request.endpoint, queue_depth=depth)
            future.set_exception(error)
            return
        if request.expired(now):
            self._metrics.record_deadline_expired(request.endpoint, queue_depth=depth)
            future.set_exception(
                DeadlineExceeded(
                    f"{request.endpoint} result arrived after the request deadline"
                )
            )
            return
        self._metrics.record_completed(
            request.endpoint, latency_s=now - request.submitted_at, queue_depth=depth
        )
        future.set_result(result)

    # -- introspection -----------------------------------------------------

    def metrics(self) -> dict:
        """A point-in-time snapshot dict (QPS, batch histogram, latency).

        For store-backed services the ``workers`` section also reports
        the store's current sealed epoch and shard-layout generation
        next to each worker's served epoch/generation and reload count
        — a live view of an in-place :meth:`GitTables.extend` (or
        :meth:`GitTables.compact`) propagating through the pool.
        """
        store_epoch = None
        store_generation = None
        if self._directory is not None:
            try:
                epoch, sealed, generation = read_store_version(self._directory)
            except Exception:
                pass
            else:
                store_generation = generation
                if sealed:
                    store_epoch = epoch
        return self._metrics.snapshot(
            queue_limit=self.config.max_queue,
            workers=self._executor.worker_info(),
            store_epoch=store_epoch,
            store_generation=store_generation,
        )

    def worker_pids(self) -> list[int]:
        """PIDs of live worker processes (empty in in-process mode)."""
        return self._executor.worker_pids()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain admitted requests, stop the workers, fail any stragglers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.stop()
        self._executor.drain(timeout=self.config.drain_timeout_s)
        self._executor.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> None:
        self.close()
