"""Concurrent query serving over a built GitTables corpus.

The read-path counterpart to the process-parallel build: a
micro-batcher coalesces concurrent ``search`` / ``complete_schema`` /
``detect_types`` requests into the existing batch kernels, a pool of
worker processes mmaps the store's persisted index artifacts, and a
metrics surface reports QPS, batch sizes, queue depth and latency
percentiles. Entry point: :meth:`GitTables.serve`.
"""

from .batcher import MicroBatcher, Request
from .metrics import ServiceMetrics
from .service import QueryService
from .workers import LocalExecutor, WorkerPool

__all__ = [
    "LocalExecutor",
    "MicroBatcher",
    "QueryService",
    "Request",
    "ServiceMetrics",
    "WorkerPool",
]
