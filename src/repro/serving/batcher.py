"""The micro-batcher: coalesce concurrent requests into kernel batches.

Concurrent callers pay per-request Python and dispatch overhead; the
corpus-side kernels (``search_batch``, ``embed_many``, ``query_batch``)
amortize almost all of it across a batch. The batcher closes that gap:
the first queued request opens a *window* that stays open for at most
``max_wait_ms`` (or until ``max_batch`` requests arrived), then the
window is split into **compatibility groups** — requests whose payloads
can ride in one kernel call, e.g. searches sharing ``k`` — and each
group is handed to the dispatch callable as one batch.

Batching never changes results: every kernel on the dispatch path is
bit-identical between batched and single-shot execution (a property the
embedding and nearest-neighbour layers maintain deliberately), so a
request observes exactly the bytes a lone ``GitTables`` call returns.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

__all__ = ["MicroBatcher", "Request"]

#: Queue sentinel telling the window loop to shut down.
_CLOSE = object()


@dataclass
class Request:
    """One admitted request riding through the batcher to a worker."""

    seq: int
    endpoint: str
    #: Compatibility key: requests are batched together iff equal.
    key: tuple
    #: Endpoint-specific payload (query string, prefix tuple, options).
    payload: object
    #: Resolved with the endpoint result (or a ServingError).
    future: object
    #: ``time.monotonic()`` at admission (latency measurement base).
    submitted_at: float = field(default_factory=time.monotonic)
    #: Absolute ``time.monotonic()`` deadline, or None for no deadline.
    deadline: float | None = None
    #: Set (under the service lock) when the request has been resolved;
    #: guards against double resolution on crash/close races.
    resolved: bool = False

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (now if now is not None else time.monotonic()) >= self.deadline


class MicroBatcher:
    """Collects queued requests into windows and dispatches them grouped.

    ``dispatch`` receives a non-empty list of requests sharing one
    compatibility key; it must resolve (or arrange resolution of) every
    future it is handed, even on failure. The batcher thread never
    blocks on results — dispatch is expected to either hand the batch to
    a worker pool asynchronously or execute it inline.
    """

    def __init__(self, dispatch, max_batch: int, max_wait_ms: float) -> None:
        self._dispatch = dispatch
        self._max_batch = max_batch
        self._max_wait_s = max_wait_ms / 1000.0
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="gittables-serve-batcher", daemon=True
        )
        self._thread.start()

    def submit(self, request: Request) -> None:
        """Enqueue one admitted request (admission control is the caller's)."""
        self._queue.put(request)

    def stop(self) -> None:
        """Dispatch everything already queued, then stop the window loop."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_CLOSE)
        self._thread.join()

    # -- window loop -------------------------------------------------------

    def _run(self) -> None:
        closing = False
        while not closing:
            first = self._queue.get()
            if first is _CLOSE:
                break
            window = [first]
            window_closes = time.monotonic() + self._max_wait_s
            while len(window) < self._max_batch:
                remaining = window_closes - time.monotonic()
                try:
                    nxt = self._queue.get(timeout=max(0.0, remaining))
                except queue.Empty:
                    break
                if nxt is _CLOSE:
                    closing = True
                    break
                window.append(nxt)
            self._dispatch_window(window)
        # Closing: everything still queued was admitted before stop(),
        # so it is dispatched (drained), not dropped.
        leftovers: list[Request] = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _CLOSE:
                continue
            leftovers.append(item)
            if len(leftovers) >= self._max_batch:
                self._dispatch_window(leftovers)
                leftovers = []
        if leftovers:
            self._dispatch_window(leftovers)

    def _dispatch_window(self, window: list) -> None:
        """Split one window into compatibility groups and dispatch each."""
        groups: dict[tuple, list[Request]] = {}
        for request in window:
            groups.setdefault(request.key, []).append(request)
        for group in groups.values():
            try:
                self._dispatch(group)
            except Exception as error:  # pragma: no cover - defensive
                for request in group:
                    if not request.future.done():
                        request.future.set_exception(error)
