"""Faker substrate and PII anonymisation.

Replaces the Faker library the paper uses to overwrite PII column values
(§3.3, Table 3) with a deterministic fake-data provider, plus the
column-level scrubbing policy (anonymise columns annotated with PII
types; ``name`` only when co-occurring with another PII type).
"""

from .provider import FakeDataProvider
from .pii_scrubber import PIIScrubber, ScrubReport

__all__ = ["FakeDataProvider", "PIIScrubber", "ScrubReport"]
