"""Column-level PII scrubbing policy (paper §3.3 'Content curation').

Given a table and its column annotations, replace values of columns
annotated with PII semantic types by fake values. The ``name`` type is
conditional: it is only scrubbed when at least one *other* PII type was
annotated in the same table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataframe.table import Table
from ..ontology.pii import CONDITIONAL_PII_TYPES, PII_FAKER_CLASSES
from .provider import FakeDataProvider

__all__ = ["PIIScrubber", "ScrubReport"]


@dataclass
class ScrubReport:
    """Outcome of scrubbing one table."""

    #: Column names that were replaced with fake values.
    scrubbed_columns: list[str] = field(default_factory=list)
    #: PII types detected per scrubbed column.
    scrubbed_types: dict[str, str] = field(default_factory=dict)
    #: Columns annotated with conditional PII types ('name') that were NOT
    #: scrubbed because no other PII type co-occurred.
    skipped_conditional: list[str] = field(default_factory=list)

    @property
    def scrubbed_count(self) -> int:
        return len(self.scrubbed_columns)


class PIIScrubber:
    """Applies the PII anonymisation policy to annotated tables."""

    def __init__(self, provider: FakeDataProvider | None = None, confidence_threshold: float = 0.7) -> None:
        self.provider = provider or FakeDataProvider()
        self.confidence_threshold = confidence_threshold

    def scrub(
        self,
        table: Table,
        column_annotations: dict[str, list[tuple[str, float]]],
    ) -> tuple[Table, ScrubReport]:
        """Scrub PII columns from ``table``.

        ``column_annotations`` maps a column name to ``(type label,
        confidence)`` pairs (any ontology). Returns the (possibly new)
        table and a :class:`ScrubReport`.
        """
        report = ScrubReport()

        pii_hits: dict[str, str] = {}
        for column_name, annotations in column_annotations.items():
            for label, confidence in annotations:
                if label in PII_FAKER_CLASSES and confidence >= self.confidence_threshold:
                    pii_hits[column_name] = label
                    break

        if not pii_hits:
            return table, report

        unconditional_present = any(
            label not in CONDITIONAL_PII_TYPES for label in pii_hits.values()
        )

        result = table
        for column_name, label in pii_hits.items():
            if label in CONDITIONAL_PII_TYPES and not unconditional_present:
                report.skipped_conditional.append(column_name)
                continue
            if column_name not in result.header:
                continue
            faker_class = PII_FAKER_CLASSES[label]
            # Key the fake-value stream by (table, column) so the same
            # column always scrubs to the same values regardless of how
            # many tables this provider scrubbed before it — required
            # for resumed corpus builds to stay byte-identical.
            provider = self.provider.keyed("scrub", table.table_id, column_name)
            fake_values = provider.generate_column(faker_class, result.num_rows)
            result = result.with_column_values(column_name, fake_values)
            report.scrubbed_columns.append(column_name)
            report.scrubbed_types[column_name] = label

        if report.scrubbed_columns:
            # Stored as list/dict so the values are stable across a JSON
            # round-trip (disk-backed corpora must deserialize to exactly
            # what the in-memory pipeline produced). The types mapping
            # lets curation statistics be rebuilt from a reloaded corpus.
            result = result.with_metadata(
                pii_scrubbed_columns=list(report.scrubbed_columns),
                pii_scrubbed_types=dict(report.scrubbed_types),
            )
        return result, report
