"""Deterministic fake data provider (Faker substitute).

Provides the generator classes referenced by paper Table 3:
``faker.name``, ``faker.address``, ``faker.email``, ``faker.date``,
``faker.city`` and ``faker.postcode``. Values are drawn from embedded
word lists with a seeded RNG so anonymisation is reproducible.
"""

from __future__ import annotations

import numpy as np

from .._rand import derive_rng

__all__ = ["FakeDataProvider"]

_FIRST_NAMES = (
    "Alex", "Jordan", "Taylor", "Morgan", "Casey", "Riley", "Jamie", "Avery",
    "Quinn", "Rowan", "Skyler", "Emerson", "Finley", "Harper", "Reese", "Dakota",
    "Elliot", "Hayden", "Kendall", "Logan", "Marion", "Noel", "Parker", "Sage",
)
_LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Martinez", "Lopez", "Wilson", "Anderson", "Thomas", "Moore", "Martin", "Lee",
    "Thompson", "White", "Harris", "Clark", "Lewis", "Walker", "Hall", "Young",
)
_STREET_NAMES = (
    "Maple", "Oak", "Cedar", "Pine", "Elm", "Willow", "Birch", "Chestnut",
    "Juniper", "Magnolia", "Sycamore", "Aspen", "Laurel", "Hawthorn",
)
_STREET_SUFFIXES = ("Street", "Avenue", "Lane", "Road", "Boulevard", "Drive", "Court")
_CITIES = (
    "Springfield", "Riverton", "Fairview", "Lakeside", "Greenville", "Bristol",
    "Clinton", "Georgetown", "Salem", "Madison", "Arlington", "Ashland",
    "Burlington", "Clayton", "Dayton", "Franklin", "Milton", "Oxford",
)
_EMAIL_DOMAINS = ("example.com", "example.org", "example.net", "mail.example", "post.example")


class FakeDataProvider:
    """Deterministic generator of fake PII replacement values.

    The default stream is sequential per provider instance; callers that
    need values to be reproducible *independent of generation order*
    (e.g. the PII scrubber, whose tables may be processed by different
    build sessions) should draw from :meth:`keyed` sub-providers.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = derive_rng(seed, "fake-data-provider")

    def keyed(self, *key: object) -> "FakeDataProvider":
        """A provider whose stream depends only on (seed, key).

        Two keyed providers with the same seed and key generate identical
        sequences no matter how much either parent has generated — the
        property that makes PII scrubbing stable across resumed corpus
        builds, where some tables are skipped rather than re-scrubbed.
        """
        provider = FakeDataProvider(seed=self.seed)
        provider._rng = derive_rng(self.seed, "fake-data-provider", *key)
        return provider

    def _choice(self, options: tuple[str, ...]) -> str:
        return str(options[int(self._rng.integers(0, len(options)))])

    # Generator methods named after the Faker classes in paper Table 3. --

    def name(self) -> str:
        """A fake person name (``faker.name``)."""
        return f"{self._choice(_FIRST_NAMES)} {self._choice(_LAST_NAMES)}"

    def address(self) -> str:
        """A fake street address (``faker.address``)."""
        number = int(self._rng.integers(1, 9999))
        return f"{number} {self._choice(_STREET_NAMES)} {self._choice(_STREET_SUFFIXES)}"

    def email(self) -> str:
        """A fake email address (``faker.email``)."""
        first = self._choice(_FIRST_NAMES).lower()
        last = self._choice(_LAST_NAMES).lower()
        return f"{first}.{last}@{self._choice(_EMAIL_DOMAINS)}"

    def date(self) -> str:
        """A fake ISO date (``faker.date``)."""
        year = int(self._rng.integers(1950, 2021))
        month = int(self._rng.integers(1, 13))
        day = int(self._rng.integers(1, 29))
        return f"{year:04d}-{month:02d}-{day:02d}"

    def city(self) -> str:
        """A fake city name (``faker.city``)."""
        return self._choice(_CITIES)

    def postcode(self) -> str:
        """A fake postal code (``faker.postcode``)."""
        return f"{int(self._rng.integers(10000, 99999))}"

    def phone_number(self) -> str:
        """A fake phone number (not in Table 3, used by examples)."""
        return f"+1-555-{int(self._rng.integers(100, 999))}-{int(self._rng.integers(1000, 9999))}"

    #: Mapping from Faker class names (as written in the paper's Table 3)
    #: to provider method names.
    _CLASS_TO_METHOD = {
        "faker.name": "name",
        "faker.address": "address",
        "faker.email": "email",
        "faker.date": "date",
        "faker.city": "city",
        "faker.postcode": "postcode",
    }

    def generate(self, faker_class: str) -> str:
        """Generate a value for a Faker class name like ``"faker.email"``."""
        method_name = self._CLASS_TO_METHOD.get(faker_class)
        if method_name is None:
            raise ValueError(f"unknown faker class {faker_class!r}")
        return getattr(self, method_name)()

    def generate_column(self, faker_class: str, count: int) -> list[str]:
        """Generate ``count`` values for a Faker class."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.generate(faker_class) for _ in range(count)]
