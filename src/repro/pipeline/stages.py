"""Stage adapters wrapping the Figure-1 components as streaming stages.

Each adapter keeps the legacy component and its legacy report intact —
``ExtractStage`` wraps :class:`~repro.core.extraction.CSVExtractor`,
``ParseStage`` wraps :class:`~repro.core.parsing.ParsingStage`, and so
on — but exposes them through the :class:`~repro.pipeline.stage.Stage`
protocol so they compose into a pull-driven graph. The legacy report
objects are registered in ``PipelineReport.stage_reports`` under the
stage name, which keeps every pre-existing statistic (parse success
rate, filter drop rate, PII fraction) available while the unified
per-stage counters are collected by the runner.

Stage graph item types::

    topics (str) → ExtractStage → ExtractedFile → ParseStage →
    ParsedFile → FilterStage → ParsedFile → AnnotateStage →
    AnnotatedCandidate → CurateStage → AnnotatedTable

``ParseStage`` and ``AnnotateStage`` additionally implement the
:class:`~repro.pipeline.stage.BatchStage` protocol (``process_batch``),
so they can be wrapped in a :class:`~repro.pipeline.stage.MapStage` to
receive whole chunks — annotation then resolves all column names of a
chunk with one batched index query per ontology — and, opt-in via
``PipelineConfig.workers``, to run chunks on a thread pool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator

from ..config import PipelineConfig
from ..core.annotation import AnnotationPipeline, TableAnnotations
from ..core.corpus import AnnotatedTable
from ..core.curation import ContentCurator, CurationReport
from ..core.extraction import CSVExtractor, ExtractionReport
from ..core.filtering import FilterReport, TableFilter
from ..core.parsing import ParsedFile, ParsingReport, ParsingStage
from ..errors import CSVParseError
from .stage import MapStage, StageContext

__all__ = [
    "AnnotatedCandidate",
    "ExtractStage",
    "ResumeSkipStage",
    "ParseStage",
    "FilterStage",
    "AnnotateStage",
    "CurateStage",
    "PipelineComponents",
    "default_stages",
    "processing_stages",
]


@dataclass
class AnnotatedCandidate:
    """A filtered, annotated table awaiting curation."""

    parsed: ParsedFile
    annotations: TableAnnotations


@dataclass
class PipelineComponents:
    """The per-file processing components behind the Figure-1 stages.

    Bundles everything downstream of extraction — parser, filter,
    annotator (with its encoder and ontology indexes), curator — and
    knows how to construct the set from a :class:`PipelineConfig` alone.
    That makes the construction a *pickle-able stage factory*: a
    process-parallel build ships only the config to each worker process,
    and every worker calls :meth:`from_config` after the fork/spawn, so
    the encoder caches and ontology label indexes are initialised
    per-process (they are neither shareable nor picklable themselves).
    """

    parser: ParsingStage
    table_filter: TableFilter
    annotator: AnnotationPipeline
    curator: ContentCurator

    @classmethod
    def from_config(cls, config: PipelineConfig, artifacts=None) -> "PipelineComponents":
        """Construct fresh components for one process from the config.

        ``artifacts`` (an
        :class:`~repro.storage.artifacts.IndexArtifactStore`) lets the
        annotation pipeline resolve its ontology label indexes from
        mmap'd fingerprint-guarded artifacts instead of re-embedding
        every label — what keeps N-process builds from paying the
        embedding cost N times.
        """
        return cls(
            parser=ParsingStage(),
            table_filter=TableFilter(config.curation),
            annotator=AnnotationPipeline(config.annotation, artifacts=artifacts),
            curator=ContentCurator(config.curation, seed=config.seed),
        )


class ExtractStage:
    """topics → :class:`ExtractedFile`, one topic's search at a time.

    Streams at topic granularity: the URL de-duplication map of a single
    topic is materialized (required for correctness), but topics past the
    point where downstream stops pulling are never even queried.
    """

    name = "extraction"

    def __init__(self, extractor: CSVExtractor) -> None:
        self.extractor = extractor
        self.report = ExtractionReport()

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        # Fresh report per run so a reused stage never mixes run counts.
        self.report = report = ExtractionReport()
        ctx.report.stage_reports[self.name] = report
        seen_urls: set[str] = set()
        client = self.extractor.client
        try:
            for topic in items:
                report.topics.append(topic)
                for extracted in self.extractor.extract_topic(topic, report=report):
                    report.total_urls += 1
                    if extracted.url in seen_urls:
                        report.duplicate_urls += 1
                        continue
                    seen_urls.add(extracted.url)
                    report.files_downloaded += 1
                    yield extracted
        finally:
            report.api_requests = client.request_count
            report.simulated_wait_seconds = client.total_wait_seconds


class ResumeSkipStage:
    """Drop extracted files whose tables a resumed build already stored.

    Sits between extraction and parsing when a corpus build targets a
    sharded store directory. ``done_urls`` is the set of source URLs
    recorded in the store manifest; re-extracted files matching it are
    dropped *before* parsing, so a resumed session never re-annotates (or
    re-curates) a committed table. The stage's runner metrics make the
    resume auditable: ``items_dropped`` is exactly the number of tables
    skipped because a previous session already produced them. On a fresh
    build the set is empty and the stage passes everything through.

    ``fast_forward_past`` sharpens the skip for *epoch extensions of a
    sealed store*: membership in ``done_urls`` only covers committed
    tables, so a plain resume still re-parses every file a previous
    session extracted and **rejected** (parse failures, filter drops) —
    an O(corpus) cost that defeats incremental growth. A sealed
    manifest, however, lists its tables in canonical stream order, and
    an extension replays the identical deterministic stream (enforced by
    the build-meta fingerprint) with extraction de-duplicating URLs — so
    the last committed table's source URL is a stream high-water mark:
    *everything* up to and including it was already processed. While
    fast-forwarding, the stage drops every file until that marker has
    passed; afterwards it falls back to the membership check. Only
    sealed-at-open extensions may set the marker — a mid-build crash of
    a *parallel* session commits out of stream order, where membership
    is the only safe filter.
    """

    name = "resume-skip"

    def __init__(
        self,
        done_urls: set[str] | frozenset[str] = frozenset(),
        fast_forward_past: str | None = None,
    ) -> None:
        self.done_urls = set(done_urls)
        self.fast_forward_past = fast_forward_past

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        marker = self.fast_forward_past
        for extracted in items:
            if marker is not None:
                if extracted.url == marker:
                    marker = None
                continue
            if extracted.url not in self.done_urls:
                yield extracted


class ParseStage:
    """:class:`ExtractedFile` → :class:`ParsedFile`, dropping parse failures."""

    name = "parsing"

    def __init__(self, parser: ParsingStage | None = None) -> None:
        self.parser = parser or ParsingStage()
        self.report = ParsingReport()
        self._report_lock = threading.Lock()

    def begin(self, ctx: StageContext) -> None:
        # Fresh report per run so a reused stage never mixes run counts.
        self.report = ParsingReport()
        ctx.report.stage_reports[self.name] = self.report

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        self.begin(ctx)
        for extracted in items:
            yield from self.process_batch([extracted], ctx)

    def process_batch(self, batch: list, ctx: StageContext) -> list:
        """Parse a chunk of extracted files, dropping parse failures.

        Counts are accumulated locally and merged into the run report
        under a lock, so chunks may be parsed concurrently.
        """
        parsed_files: list[ParsedFile] = []
        failures: dict[str, int] = {}
        for extracted in batch:
            try:
                parsed_files.append(self.parser.parse_file(extracted))
            except CSVParseError as error:
                reason = str(error).split(":")[0]
                failures[reason] = failures.get(reason, 0) + 1
        with self._report_lock:
            report = self.report
            report.attempted += len(batch)
            report.parsed += len(parsed_files)
            report.failed += len(batch) - len(parsed_files)
            for reason, count in failures.items():
                report.failures_by_reason[reason] = report.failures_by_reason.get(reason, 0) + count
        return parsed_files


class FilterStage:
    """:class:`ParsedFile` → surviving :class:`ParsedFile` (paper §3.3 rules)."""

    name = "filtering"

    def __init__(self, table_filter: TableFilter) -> None:
        self.table_filter = table_filter
        self.report = FilterReport()

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        self.report = report = FilterReport()
        ctx.report.stage_reports[self.name] = report
        for parsed in items:
            license_obj = parsed.source.license
            license_key = license_obj.key if license_obj is not None else None
            decision = self.table_filter.evaluate(parsed.table, license_key=license_key)
            report.record(decision)
            if decision.keep:
                yield parsed


class AnnotateStage:
    """:class:`ParsedFile` → :class:`AnnotatedCandidate` (paper §3.4).

    ``process`` annotates one table at a time (all of a table's columns
    still resolve through one batched index query per ontology), keeping
    the strict pull-one semantics of the streaming graph. ``process_batch``
    annotates a whole chunk with a single resolution pass across every
    column name in the chunk; batched and per-item results are
    bit-identical.
    """

    name = "annotation"

    def __init__(self, annotator: AnnotationPipeline) -> None:
        self.annotator = annotator

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        for parsed in items:
            yield AnnotatedCandidate(
                parsed=parsed, annotations=self.annotator.annotate(parsed.table)
            )

    def process_batch(self, batch: list, ctx: StageContext) -> list:
        """Annotate a chunk of parsed files with one resolution pass."""
        annotations = self.annotator.annotate_batch([parsed.table for parsed in batch])
        return [
            AnnotatedCandidate(parsed=parsed, annotations=table_annotations)
            for parsed, table_annotations in zip(batch, annotations)
        ]


class CurateStage:
    """:class:`AnnotatedCandidate` → :class:`AnnotatedTable` (PII scrubbing)."""

    name = "curation"

    def __init__(self, curator: ContentCurator) -> None:
        self.curator = curator
        self.report = CurationReport()

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        self.report = report = CurationReport()
        ctx.report.stage_reports[self.name] = report
        for candidate in items:
            parsed = candidate.parsed
            curated = self.curator.curate(
                parsed.table, candidate.annotations, report=report
            )
            source = parsed.source
            yield AnnotatedTable(
                table=curated.table,
                annotations=candidate.annotations,
                topic=source.topic,
                repository=source.repository,
                source_url=source.url,
                license_key=source.license.key if source.license else None,
            )


def default_stages(
    extractor: CSVExtractor,
    parser: ParsingStage,
    table_filter: TableFilter,
    annotator: AnnotationPipeline,
    curator: ContentCurator,
    workers: int = 1,
    chunk_size: int = 32,
    skip_source_urls: set[str] | None = None,
    fast_forward_past: str | None = None,
) -> list:
    """The paper's Figure-1 stage order, from existing components.

    With ``workers > 1`` the batch-capable stages (parsing, annotation)
    are wrapped in :class:`~repro.pipeline.stage.MapStage` so chunks of
    ``chunk_size`` items run on a thread pool. The default ``workers=1``
    keeps the strictly serial per-item graph (zero over-pull past an
    early-stop limit).

    ``skip_source_urls`` (store-targeted builds only) inserts a
    :class:`ResumeSkipStage` after extraction so tables already committed
    by an interrupted session are never re-annotated;
    ``fast_forward_past`` additionally skips everything up to the sealed
    store's stream high-water mark (see :class:`ResumeSkipStage`).
    """
    stages: list = [ExtractStage(extractor)]
    if skip_source_urls is not None:
        stages.append(ResumeSkipStage(skip_source_urls, fast_forward_past=fast_forward_past))
    stages.extend(
        processing_stages(
            PipelineComponents(
                parser=parser,
                table_filter=table_filter,
                annotator=annotator,
                curator=curator,
            ),
            workers=workers,
            chunk_size=chunk_size,
        )
    )
    return stages


def processing_stages(
    components: PipelineComponents,
    workers: int = 1,
    chunk_size: int = 32,
) -> list:
    """The post-extraction stage graph: parse → filter → annotate → curate.

    This is the per-file work a build fans out — thread-parallel via
    ``workers`` (chunked :class:`~repro.pipeline.stage.MapStage`), and
    process-parallel by running one such graph per worker process over a
    disjoint slice of the extracted-file stream
    (:mod:`repro.storage.parallel`).
    """
    parse = ParseStage(components.parser)
    annotate = AnnotateStage(components.annotator)
    if workers > 1:
        parse = MapStage(parse, chunk_size=chunk_size, workers=workers)
        annotate = MapStage(annotate, chunk_size=chunk_size, workers=workers)
    return [
        parse,
        FilterStage(components.table_filter),
        annotate,
        CurateStage(components.curator),
    ]
