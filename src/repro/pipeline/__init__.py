"""Streaming stage-graph pipeline API.

The paper's Figure-1 pipeline as a composable graph of pull-driven
generator stages::

    from repro.pipeline import Pipeline

    pipeline = Pipeline([extract, parse, filter_, annotate, curate], batch_size=32)
    outcome = pipeline.run(topics, config=config, limit=config.target_tables)
    print(outcome.report.summary())

Stages implement the :class:`Stage` protocol (``process(items, ctx) ->
Iterator``); plain callables are adapted automatically. The runner
streams items in configurable batches, stops pulling the moment a result
limit is met, and collects per-stage counters and timings into a
:class:`PipelineReport`. Adapters for every legacy Figure-1 component
live in :mod:`repro.pipeline.stages`.
"""

from .report import PipelineReport, StageMetrics, combine_counters
from .runner import Pipeline, PipelineOutcome
from .stage import (
    BatchStage,
    FunctionStage,
    MapStage,
    Stage,
    StageContext,
    iter_chunks,
    stage_from,
)
from .stages import (
    AnnotateStage,
    AnnotatedCandidate,
    CurateStage,
    ExtractStage,
    FilterStage,
    ParseStage,
    PipelineComponents,
    ResumeSkipStage,
    default_stages,
    processing_stages,
)

__all__ = [
    "AnnotateStage",
    "AnnotatedCandidate",
    "BatchStage",
    "CurateStage",
    "ExtractStage",
    "FilterStage",
    "FunctionStage",
    "MapStage",
    "ParseStage",
    "Pipeline",
    "PipelineComponents",
    "PipelineOutcome",
    "PipelineReport",
    "ResumeSkipStage",
    "Stage",
    "StageContext",
    "StageMetrics",
    "combine_counters",
    "default_stages",
    "iter_chunks",
    "processing_stages",
    "stage_from",
]
