"""The stage protocol of the streaming pipeline API.

A stage is anything with a ``name`` and a ``process(items, ctx)`` method
that maps an iterator of upstream items to an iterator of downstream
items. Stages are *pull-driven*: nothing upstream runs until a consumer
asks for the next item, which is what lets the runner stop the whole
graph the moment a corpus target is met.

:class:`StageContext` carries the run-wide configuration, the
:class:`~repro.pipeline.report.PipelineReport` being assembled, and a
free-form ``state`` dict stages can use to publish artefacts to each
other (and to the caller).

Batch-capable stages implement the :class:`BatchStage` protocol
(``process_batch(batch, ctx) -> list``) and are adapted into the
streaming graph by :class:`MapStage`, which chunks the upstream stream
and — opt-in via ``workers`` (or ``PipelineConfig.workers``) — executes
chunks on a thread pool while preserving output order.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Iterable, Iterator, Protocol, runtime_checkable

from ..config import PipelineConfig
from .report import PipelineReport

__all__ = [
    "StageContext",
    "Stage",
    "BatchStage",
    "FunctionStage",
    "MapStage",
    "iter_chunks",
    "stage_from",
]


def iter_chunks(items: Iterable, chunk_size: int) -> Iterator[list]:
    """Yield ``items`` in lists of at most ``chunk_size``.

    The chunking primitive shared by :class:`MapStage` and the
    process-parallel build workers (which commit one chunk per shard
    append, so the chunk is also the crash-atomicity unit).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    iterator = iter(items)
    while True:
        chunk = list(islice(iterator, chunk_size))
        if not chunk:
            return
        yield chunk


@dataclass
class StageContext:
    """Run-wide state shared by every stage of one pipeline run."""

    config: PipelineConfig | None = None
    report: PipelineReport = field(default_factory=PipelineReport)
    #: Free-form cross-stage scratch space (artefact registry).
    state: dict[str, object] = field(default_factory=dict)

    def publish(self, key: str, value: object) -> None:
        """Publish an artefact for downstream stages / the caller."""
        self.state[key] = value


@runtime_checkable
class Stage(Protocol):
    """Protocol every pipeline stage implements."""

    name: str

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        """Map an iterator of upstream items to downstream items."""
        ...


class FunctionStage:
    """Adapt a plain callable into a :class:`Stage`.

    ``fn`` is applied per item; returning ``None`` drops the item (so a
    predicate-style callable doubles as a filter when combined with
    ``drop_none=True``, the default).
    """

    def __init__(self, fn: Callable, name: str | None = None, drop_none: bool = True) -> None:
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "function")
        self.drop_none = drop_none

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        for item in items:
            result = self.fn(item)
            if result is None and self.drop_none:
                continue
            yield result


@runtime_checkable
class BatchStage(Protocol):
    """Protocol of a stage that maps a whole batch of items at once.

    ``process_batch`` receives a materialized chunk of upstream items and
    returns the downstream items (dropping is expressed by returning
    fewer). An optional ``begin(ctx)`` hook, when present, is called once
    per run before the first chunk (stages use it to register fresh
    legacy reports). Implementations that mutate shared state in
    ``process_batch`` must be thread-safe: :class:`MapStage` may invoke
    it concurrently when workers are enabled.
    """

    name: str

    def process_batch(self, batch: list, ctx: StageContext) -> list:
        """Map one chunk of upstream items to downstream items."""
        ...


class MapStage:
    """Adapt a :class:`BatchStage` into the streaming :class:`Stage` protocol.

    The upstream iterator is consumed in chunks of ``chunk_size``, each
    handed to the wrapped stage's ``process_batch``. With ``workers > 1``
    — explicit, or inherited from ``PipelineConfig.workers`` — up to
    ``workers`` chunks are in flight on a thread pool at once, and
    results are yielded strictly in input order.

    Trade-off versus a plain per-item stage: chunking pulls up to
    ``chunk_size`` items from upstream even when the run's limit needs
    fewer, and the parallel mode keeps up to ``workers + 1`` chunks in
    flight, so opt in where throughput matters more than strict zero
    over-pull (the default construction graph stays per-item).
    """

    def __init__(
        self,
        stage: BatchStage,
        chunk_size: int = 32,
        workers: int | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.stage = stage
        self.name = stage.name
        self.chunk_size = chunk_size
        self.workers = workers

    def _resolve_workers(self, ctx: StageContext) -> int:
        if self.workers is not None:
            return self.workers
        workers = getattr(ctx.config, "workers", 1) if ctx.config is not None else 1
        return max(1, int(workers))

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        begin = getattr(self.stage, "begin", None)
        if begin is not None:
            begin(ctx)
        chunks = iter_chunks(items, self.chunk_size)
        workers = self._resolve_workers(ctx)
        if workers == 1:
            for chunk in chunks:
                yield from self.stage.process_batch(chunk, ctx)
            return
        yield from self._process_parallel(chunks, ctx, workers)

    def _process_parallel(
        self, chunks: Iterable[list], ctx: StageContext, workers: int
    ) -> Iterator:
        pending: deque = deque()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            try:
                for chunk in chunks:
                    pending.append(pool.submit(self.stage.process_batch, chunk, ctx))
                    while len(pending) > workers:
                        yield from pending.popleft().result()
                while pending:
                    yield from pending.popleft().result()
            finally:
                for future in pending:
                    future.cancel()


def stage_from(obj: Stage | Callable, name: str | None = None) -> Stage:
    """Coerce a stage or bare callable into a :class:`Stage`."""
    if callable(obj) and not hasattr(obj, "process"):
        return FunctionStage(obj, name=name)
    if name is not None and getattr(obj, "name", None) != name:
        obj.name = name  # type: ignore[union-attr]
    return obj  # type: ignore[return-value]
