"""The stage protocol of the streaming pipeline API.

A stage is anything with a ``name`` and a ``process(items, ctx)`` method
that maps an iterator of upstream items to an iterator of downstream
items. Stages are *pull-driven*: nothing upstream runs until a consumer
asks for the next item, which is what lets the runner stop the whole
graph the moment a corpus target is met.

:class:`StageContext` carries the run-wide configuration, the
:class:`~repro.pipeline.report.PipelineReport` being assembled, and a
free-form ``state`` dict stages can use to publish artefacts to each
other (and to the caller).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol, runtime_checkable

from ..config import PipelineConfig
from .report import PipelineReport

__all__ = ["StageContext", "Stage", "FunctionStage", "stage_from"]


@dataclass
class StageContext:
    """Run-wide state shared by every stage of one pipeline run."""

    config: PipelineConfig | None = None
    report: PipelineReport = field(default_factory=PipelineReport)
    #: Free-form cross-stage scratch space (artefact registry).
    state: dict[str, object] = field(default_factory=dict)

    def publish(self, key: str, value: object) -> None:
        """Publish an artefact for downstream stages / the caller."""
        self.state[key] = value


@runtime_checkable
class Stage(Protocol):
    """Protocol every pipeline stage implements."""

    name: str

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        """Map an iterator of upstream items to downstream items."""
        ...


class FunctionStage:
    """Adapt a plain callable into a :class:`Stage`.

    ``fn`` is applied per item; returning ``None`` drops the item (so a
    predicate-style callable doubles as a filter when combined with
    ``drop_none=True``, the default).
    """

    def __init__(self, fn: Callable, name: str | None = None, drop_none: bool = True) -> None:
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "function")
        self.drop_none = drop_none

    def process(self, items: Iterator, ctx: StageContext) -> Iterator:
        for item in items:
            result = self.fn(item)
            if result is None and self.drop_none:
                continue
            yield result


def stage_from(obj: Stage | Callable, name: str | None = None) -> Stage:
    """Coerce a stage or bare callable into a :class:`Stage`."""
    if callable(obj) and not hasattr(obj, "process"):
        return FunctionStage(obj, name=name)
    if name is not None and getattr(obj, "name", None) != name:
        obj.name = name  # type: ignore[union-attr]
    return obj  # type: ignore[return-value]
