"""Unified instrumentation for streaming pipeline runs.

Every :class:`~repro.pipeline.runner.Pipeline` run produces one
:class:`PipelineReport`: per-stage item counters and wall-clock timings
(:class:`StageMetrics`), runner-level batch statistics, and the legacy
stage report objects (``ExtractionReport``, ``ParsingReport``, …)
registered by the stage adapters. The counters are designed to reconcile
with the legacy reports — e.g. the parsing stage's ``items_in`` equals
``ParsingReport.attempted`` — so experiments can cross-check either view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageMetrics", "PipelineReport", "combine_counters"]


def combine_counters(base: dict, current: dict) -> dict:
    """Sum two :meth:`PipelineReport.counters` snapshots stage-wise.

    Used while a resumable build is running: the persisted checkpoint is
    always ``combine_counters(prior_sessions_base, this_session_so_far)``
    — recomputed from the immutable base at every commit, never
    compounded onto itself.
    """
    stages: dict[str, dict] = {}
    for snapshot in (base, current):
        for name, counts in snapshot.get("stages", {}).items():
            into = stages.setdefault(
                name, {"items_in": 0, "items_out": 0, "cumulative_seconds": 0.0}
            )
            into["items_in"] += int(counts.get("items_in", 0))
            into["items_out"] += int(counts.get("items_out", 0))
            into["cumulative_seconds"] += float(counts.get("cumulative_seconds", 0.0))
    return {
        "sessions": int(base.get("sessions", 0)) + int(current.get("sessions", 1)),
        "batches": int(base.get("batches", 0)) + int(current.get("batches", 0)),
        "items_collected": (
            int(base.get("items_collected", 0)) + int(current.get("items_collected", 0))
        ),
        "total_seconds": (
            float(base.get("total_seconds", 0.0)) + float(current.get("total_seconds", 0.0))
        ),
        "stages": stages,
    }


@dataclass
class StageMetrics:
    """Item counters and timing for one stage of a pipeline run."""

    name: str
    #: Items the stage pulled from its upstream iterator.
    items_in: int = 0
    #: Items the stage yielded downstream.
    items_out: int = 0
    #: Wall-clock seconds spent inside this stage only (upstream time
    #: subtracted).
    seconds: float = 0.0
    #: Wall-clock seconds spent producing this stage's output including
    #: all upstream stages (monotone along the graph).
    cumulative_seconds: float = 0.0

    @property
    def items_dropped(self) -> int:
        """Items consumed but not re-emitted (filtered or failed)."""
        return max(0, self.items_in - self.items_out)

    @property
    def throughput(self) -> float:
        """Items emitted per second of exclusive stage time."""
        if self.seconds <= 0.0:
            return 0.0
        return self.items_out / self.seconds


@dataclass
class PipelineReport:
    """Aggregate instrumentation of one pipeline run."""

    pipeline_name: str = "pipeline"
    batch_size: int = 1
    #: Stage name -> metrics, in graph order.
    stages: dict[str, StageMetrics] = field(default_factory=dict)
    #: Stage name -> the stage's domain-specific report object (the
    #: legacy ``ExtractionReport``/``ParsingReport``/… instances).
    stage_reports: dict[str, object] = field(default_factory=dict)
    #: Number of result batches the runner pulled.
    batches: int = 0
    #: Largest number of result items materialized at once by the runner;
    #: bounded by ``batch_size`` for a streaming run.
    peak_batch_items: int = 0
    #: Total results collected by the runner.
    items_collected: int = 0
    #: True when the runner stopped pulling because it hit its limit.
    stopped_early: bool = False
    total_seconds: float = 0.0
    #: Number of build sessions these counters cover. 1 for a normal run;
    #: a resumed corpus build merges the counters of every prior
    #: interrupted session (see :meth:`merge_counters`).
    sessions: int = 1

    def stage(self, name: str) -> StageMetrics:
        """Metrics for one stage (raises ``KeyError`` for unknown names)."""
        return self.stages[name]

    def register_stage(self, name: str) -> StageMetrics:
        """Create (or return) the metrics slot for a stage, in call order."""
        if name not in self.stages:
            self.stages[name] = StageMetrics(name=name)
        return self.stages[name]

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(self.stages)

    # -- cross-session reconciliation --------------------------------------

    def counters(self) -> dict:
        """A JSON-serialisable snapshot of the run's counters.

        Used by resumable corpus builds: the snapshot is persisted in the
        build checkpoint at every commit and merged into the next
        session's report by :meth:`merge_counters`, so the final report
        of a build that spanned several interrupted sessions accounts for
        *all* work done. Only counters that sum meaningfully are included
        (the legacy per-stage report objects are per-session).
        """
        return {
            "sessions": self.sessions,
            "batches": self.batches,
            "items_collected": self.items_collected,
            "total_seconds": self.total_seconds,
            "stages": {
                name: {
                    "items_in": metrics.items_in,
                    "items_out": metrics.items_out,
                    "cumulative_seconds": metrics.cumulative_seconds,
                }
                for name, metrics in self.stages.items()
            },
        }

    def merge_counters(self, prior: dict) -> None:
        """Fold a prior session's :meth:`counters` snapshot into this report.

        Item counts add up per stage; per-stage exclusive seconds are
        re-derived from the prior cumulative chain so timings reflect
        total wall-clock work across sessions. Call after the run has
        finished (the runner finalizes exclusive times first).
        """
        prior_upstream = 0.0
        for name, counts in prior.get("stages", {}).items():
            metrics = self.register_stage(name)
            metrics.items_in += int(counts.get("items_in", 0))
            metrics.items_out += int(counts.get("items_out", 0))
            prior_cumulative = float(counts.get("cumulative_seconds", 0.0))
            metrics.cumulative_seconds += prior_cumulative
            metrics.seconds += max(0.0, prior_cumulative - prior_upstream)
            prior_upstream = prior_cumulative
        self.sessions += int(prior.get("sessions", 1))
        self.batches += int(prior.get("batches", 0))
        self.items_collected += int(prior.get("items_collected", 0))
        self.total_seconds += float(prior.get("total_seconds", 0.0))

    def as_rows(self) -> list[dict]:
        """One dict per stage, convenient for tabular printing."""
        return [
            {
                "stage": metrics.name,
                "items_in": metrics.items_in,
                "items_out": metrics.items_out,
                "dropped": metrics.items_dropped,
                "seconds": round(metrics.seconds, 4),
            }
            for metrics in self.stages.values()
        ]

    def summary(self) -> str:
        """A multi-line human-readable run summary."""
        lines = [
            f"{self.pipeline_name}: {self.items_collected} items in "
            f"{self.batches} batches (batch_size={self.batch_size}, "
            f"peak={self.peak_batch_items}, {self.total_seconds:.2f}s)"
        ]
        for row in self.as_rows():
            lines.append(
                f"  {row['stage']:>12}: {row['items_in']:>6} in, "
                f"{row['items_out']:>6} out, {row['dropped']:>5} dropped, "
                f"{row['seconds']:.3f}s"
            )
        return "\n".join(lines)
