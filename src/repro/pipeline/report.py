"""Unified instrumentation for streaming pipeline runs.

Every :class:`~repro.pipeline.runner.Pipeline` run produces one
:class:`PipelineReport`: per-stage item counters and wall-clock timings
(:class:`StageMetrics`), runner-level batch statistics, and the legacy
stage report objects (``ExtractionReport``, ``ParsingReport``, …)
registered by the stage adapters. The counters are designed to reconcile
with the legacy reports — e.g. the parsing stage's ``items_in`` equals
``ParsingReport.attempted`` — so experiments can cross-check either view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StageMetrics", "PipelineReport"]


@dataclass
class StageMetrics:
    """Item counters and timing for one stage of a pipeline run."""

    name: str
    #: Items the stage pulled from its upstream iterator.
    items_in: int = 0
    #: Items the stage yielded downstream.
    items_out: int = 0
    #: Wall-clock seconds spent inside this stage only (upstream time
    #: subtracted).
    seconds: float = 0.0
    #: Wall-clock seconds spent producing this stage's output including
    #: all upstream stages (monotone along the graph).
    cumulative_seconds: float = 0.0

    @property
    def items_dropped(self) -> int:
        """Items consumed but not re-emitted (filtered or failed)."""
        return max(0, self.items_in - self.items_out)

    @property
    def throughput(self) -> float:
        """Items emitted per second of exclusive stage time."""
        if self.seconds <= 0.0:
            return 0.0
        return self.items_out / self.seconds


@dataclass
class PipelineReport:
    """Aggregate instrumentation of one pipeline run."""

    pipeline_name: str = "pipeline"
    batch_size: int = 1
    #: Stage name -> metrics, in graph order.
    stages: dict[str, StageMetrics] = field(default_factory=dict)
    #: Stage name -> the stage's domain-specific report object (the
    #: legacy ``ExtractionReport``/``ParsingReport``/… instances).
    stage_reports: dict[str, object] = field(default_factory=dict)
    #: Number of result batches the runner pulled.
    batches: int = 0
    #: Largest number of result items materialized at once by the runner;
    #: bounded by ``batch_size`` for a streaming run.
    peak_batch_items: int = 0
    #: Total results collected by the runner.
    items_collected: int = 0
    #: True when the runner stopped pulling because it hit its limit.
    stopped_early: bool = False
    total_seconds: float = 0.0

    def stage(self, name: str) -> StageMetrics:
        """Metrics for one stage (raises ``KeyError`` for unknown names)."""
        return self.stages[name]

    def register_stage(self, name: str) -> StageMetrics:
        """Create (or return) the metrics slot for a stage, in call order."""
        if name not in self.stages:
            self.stages[name] = StageMetrics(name=name)
        return self.stages[name]

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(self.stages)

    def as_rows(self) -> list[dict]:
        """One dict per stage, convenient for tabular printing."""
        return [
            {
                "stage": metrics.name,
                "items_in": metrics.items_in,
                "items_out": metrics.items_out,
                "dropped": metrics.items_dropped,
                "seconds": round(metrics.seconds, 4),
            }
            for metrics in self.stages.values()
        ]

    def summary(self) -> str:
        """A multi-line human-readable run summary."""
        lines = [
            f"{self.pipeline_name}: {self.items_collected} items in "
            f"{self.batches} batches (batch_size={self.batch_size}, "
            f"peak={self.peak_batch_items}, {self.total_seconds:.2f}s)"
        ]
        for row in self.as_rows():
            lines.append(
                f"  {row['stage']:>12}: {row['items_in']:>6} in, "
                f"{row['items_out']:>6} out, {row['dropped']:>5} dropped, "
                f"{row['seconds']:.3f}s"
            )
        return "\n".join(lines)
