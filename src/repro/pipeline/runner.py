"""Composable, streaming pipeline runner.

A :class:`Pipeline` chains stages into a single pull-driven generator
graph. Items flow through one at a time; the runner consumes results in
configurable batches and stops pulling — across the *whole* graph — as
soon as an optional ``limit`` is met. No stage ever materializes the
full intermediate stream, which both bounds memory and avoids wasted
work (e.g. annotating tables that would be discarded once the corpus
target is reached).

Each run assembles a :class:`~repro.pipeline.report.PipelineReport` with
per-stage item counters and wall-clock timings, collected by wrapping
every stage boundary with counting/timing iterators.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from time import perf_counter
from typing import Callable, Iterable, Iterator, Sequence

from ..config import PipelineConfig
from .report import PipelineReport, StageMetrics
from .stage import Stage, StageContext, stage_from

__all__ = ["Pipeline", "PipelineOutcome"]


@dataclass
class PipelineOutcome:
    """The collected results of one pipeline run."""

    items: list
    report: PipelineReport
    context: StageContext

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator:
        return iter(self.items)


def _count_pulls(upstream: Iterator, metrics: StageMetrics) -> Iterator:
    """Count items a stage pulls from its upstream."""
    for item in upstream:
        metrics.items_in += 1
        yield item


class Pipeline:
    """An ordered graph of streaming stages."""

    def __init__(
        self,
        stages: Sequence[Stage | Callable] = (),
        batch_size: int = 32,
        name: str = "pipeline",
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.name = name
        self.stages: list[Stage] = []
        for stage in stages:
            self.then(stage)

    # -- composition -------------------------------------------------------

    def then(self, stage: Stage | Callable, name: str | None = None) -> "Pipeline":
        """Append a stage (chainable)."""
        resolved = stage_from(stage, name)
        if any(existing.name == resolved.name for existing in self.stages):
            raise ValueError(f"duplicate stage name {resolved.name!r}")
        self.stages.append(resolved)
        return self

    def insert(self, index: int, stage: Stage | Callable, name: str | None = None) -> "Pipeline":
        """Insert a stage at ``index`` (chainable)."""
        resolved = stage_from(stage, name)
        if any(existing.name == resolved.name for existing in self.stages):
            raise ValueError(f"duplicate stage name {resolved.name!r}")
        self.stages.insert(index, resolved)
        return self

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    # -- execution ---------------------------------------------------------

    def stream(self, source: Iterable, ctx: StageContext) -> Iterator:
        """The lazy output iterator of the full stage graph.

        Nothing executes until the returned iterator is pulled; callers
        that stop pulling stop the entire upstream graph. Callers that
        abandon the iterator early should ``close()`` it so stage
        ``finally`` blocks run deterministically (``run`` does this).
        """
        iterator, _ = self._build(source, ctx)
        return iterator

    def _build(self, source: Iterable, ctx: StageContext) -> tuple[Iterator, list]:
        """Assemble the generator chain plus the list of closeables."""
        if not self.stages:
            raise ValueError("pipeline has no stages")
        closers: list = []
        current: Iterator = iter(source)
        for stage in self.stages:
            metrics = ctx.report.register_stage(stage.name)
            stage_output = iter(stage.process(_count_pulls(current, metrics), ctx))
            current = self._timed_output(stage_output, metrics)
            closers.append(stage_output)
            closers.append(current)
        return current, closers

    @staticmethod
    def _timed_output(output: Iterator, metrics: StageMetrics) -> Iterator:
        """Count and time the items a stage emits (inclusive of upstream)."""
        while True:
            started = perf_counter()
            try:
                item = next(output)
            except StopIteration:
                metrics.cumulative_seconds += perf_counter() - started
                return
            metrics.cumulative_seconds += perf_counter() - started
            metrics.items_out += 1
            yield item

    def run(
        self,
        source: Iterable,
        config: PipelineConfig | None = None,
        ctx: StageContext | None = None,
        limit: int | None = None,
        sink: Callable[[list], None] | None = None,
    ) -> PipelineOutcome:
        """Run the graph over ``source``, collecting at most ``limit`` items.

        Results are pulled in batches of ``batch_size``; once ``limit``
        results have been collected no further item is pulled from any
        stage (streaming early stop).

        With a ``sink``, each result batch is handed to ``sink(batch)``
        instead of being accumulated, so the run never materializes more
        than one batch of results — this is how corpus builds stream
        straight into an on-disk store. ``PipelineOutcome.items`` is
        empty in sink mode; counters in the report are unaffected. A
        sink that raises aborts the run (stage ``finally`` blocks still
        execute), which is also the crash model of resumable builds:
        everything the sink committed stays committed.
        """
        if ctx is None:
            ctx = StageContext(config=config)
        elif config is not None:
            ctx.config = config
        report = ctx.report
        report.pipeline_name = self.name
        report.batch_size = self.batch_size

        started = perf_counter()
        stream, closers = self._build(source, ctx)
        items: list = []
        collected = 0
        try:
            while True:
                take = self.batch_size
                if limit is not None:
                    take = min(take, limit - collected)
                    if take <= 0:
                        report.stopped_early = True
                        break
                batch = list(islice(stream, take))
                if not batch:
                    break
                report.batches += 1
                report.peak_batch_items = max(report.peak_batch_items, len(batch))
                collected += len(batch)
                # Keep the collected count and elapsed time live so
                # mid-run checkpoint snapshots (resumable builds) see
                # accurate totals even if this session is killed.
                report.items_collected = collected
                report.total_seconds = perf_counter() - started
                if sink is not None:
                    sink(batch)
                else:
                    items.extend(batch)
        finally:
            # Close outermost-first so stage finally-blocks (which flush
            # report fields) run now, not whenever GC finalizes the chain.
            for generator in reversed(closers):
                close = getattr(generator, "close", None)
                if close is not None:
                    close()
        report.items_collected = collected
        report.total_seconds = perf_counter() - started
        self._finalize_exclusive_times(report)
        return PipelineOutcome(items=items, report=report, context=ctx)

    @staticmethod
    def _finalize_exclusive_times(report: PipelineReport) -> None:
        """Derive per-stage exclusive seconds from the inclusive timings."""
        upstream_seconds = 0.0
        for metrics in report.stages.values():
            metrics.seconds = max(0.0, metrics.cumulative_seconds - upstream_seconds)
            upstream_seconds = metrics.cumulative_seconds
