"""The :class:`GitTables` session facade.

One object fronting everything downstream of a built corpus: the five
paper applications (semantic type detection §5.1, schema completion
§5.2, data search §5.3, table-to-KG matching §5.3, and the §4.2 data
shift classifier) plus corpus statistics and persistence, behind uniform
methods with shared lazily-built state.

The expensive artefacts — the sentence-embedding cache, the search
engine's schema-embedding index, the completion index, the curated KG
benchmark — are constructed on first use and reused across calls, so
repeated queries never rebuild state. Sessions over a sharded store
directory additionally persist those indexes as **mmap-backed
artifacts** next to the corpus (:mod:`repro.storage.artifacts`):
:meth:`GitTables.load` warms them from disk in milliseconds with zero
corpus-wide embedding work, building and publishing on first miss.
Search and completion resolve
through batched nearest-neighbour queries
(:meth:`~repro.embeddings.similarity.NearestNeighbourIndex.query_batch`);
:meth:`GitTables.search_batch` exposes the many-queries-in-one-GEMM path
directly::

    from repro import GitTables, PipelineConfig

    gt = GitTables.build(PipelineConfig.small())
    gt.search("status and sales amount per product", k=3)
    gt.search_batch(["order status", "sensor readings"], k=3)
    gt.complete_schema(["order_id", "order_date"], k=5)
    gt.detect_types()
"""

from __future__ import annotations

import dataclasses
import os

from .applications.data_search import SearchResult, TableSearchEngine
from .applications.domain_classifier import DomainShiftResult, detect_data_shift
from .applications.kg_matching import (
    KGMatchingBenchmark,
    MatcherScore,
    PatternMatcher,
    ValueLinkingMatcher,
    evaluate_matcher,
)
from .applications.schema_completion import (
    CompletionEvaluation,
    NearestCompletion,
    SchemaCompletion,
)
from .applications.type_detection import TypeDetectionExperiment, TypeDetectionResult
from .config import DEFAULT_INDEX_CONFIG, IndexConfig, PipelineConfig
from .core.corpus import GitTablesCorpus
from .core.pipeline import DEFAULT_BATCH_SIZE, CorpusBuilder, PipelineResult
from .errors import CorpusError
from .github.content import GeneratorConfig
from .storage.artifacts import IndexArtifactStore, try_publish
from .storage.checkpoint import load_build_meta
from .storage.columnar import ColumnarProjection, ensure_projection, publish_projection
from .storage.sharded import DEFAULT_SHARD_SIZE, ShardedJsonlStore, is_sharded_dir
from .core.stats import AnnotationStatistics, CorpusStatistics
from .embeddings.sentence import SentenceEncoder
from .pipeline.report import PipelineReport

__all__ = ["GitTables"]


class GitTables:
    """A session over a built GitTables corpus.

    Construct with :meth:`build` (runs the streaming construction
    pipeline), :meth:`from_corpus` (wrap an existing corpus), or
    :meth:`load` (read a corpus saved with :meth:`save`).
    """

    def __init__(
        self,
        corpus: GitTablesCorpus,
        result: PipelineResult | None = None,
        config: PipelineConfig | None = None,
        encoder: SentenceEncoder | None = None,
        artifacts: IndexArtifactStore | None = None,
        index_config: IndexConfig | None = None,
    ) -> None:
        self._corpus = corpus
        self._result = result
        self.config = config
        #: Scale gate + knobs for the approximate nearest-neighbour tier
        #: shared by every index this session builds.
        self._index_config = index_config if index_config is not None else DEFAULT_INDEX_CONFIG
        #: One embedding model (with its internal text cache) shared by
        #: search and schema completion.
        self._encoder = encoder or SentenceEncoder()
        #: Optional persistent artifact store: the lazily-built indexes
        #: below are resolved from (and published to) mmap-backed
        #: fingerprint-guarded artifacts living next to the corpus.
        self._artifacts = artifacts
        self._search_engine: TableSearchEngine | None = None
        self._completer: NearestCompletion | None = None
        self._kg_benchmarks: dict[tuple[int, int], KGMatchingBenchmark] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: PipelineConfig | None = None,
        instance=None,
        generator_config=None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        store_dir: str | os.PathLike[str] | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        processes: int | None = None,
        index_config: IndexConfig | None = None,
    ) -> "GitTables":
        """Run the streaming construction pipeline and wrap the result.

        With ``store_dir`` the build streams into a sharded on-disk
        store and is resumable: re-running after an interruption picks
        up from the store's manifest instead of starting over, and the
        session's corpus is backed by the lazy sharded reader rather
        than held in memory. ``processes`` (default:
        ``config.processes``) fans a store build out across worker
        processes — the finalized directory is byte-identical to a
        serial build, and a killed build may be resumed under any
        process count. See :meth:`CorpusBuilder.build
        <repro.core.pipeline.CorpusBuilder.build>`.
        """
        builder = CorpusBuilder(
            config=config,
            instance=instance,
            generator_config=generator_config,
            batch_size=batch_size,
        )
        result = builder.build(store_dir=store_dir, shard_size=shard_size, processes=processes)
        artifacts = (
            IndexArtifactStore.for_corpus_dir(store_dir) if store_dir is not None else None
        )
        return cls(
            corpus=result.corpus,
            result=result,
            config=builder.config,
            artifacts=artifacts,
            index_config=index_config,
        )

    @classmethod
    def from_corpus(
        cls,
        corpus: GitTablesCorpus,
        config: PipelineConfig | None = None,
        artifacts: IndexArtifactStore | None = None,
        index_config: IndexConfig | None = None,
    ) -> "GitTables":
        """Wrap an already-built corpus."""
        return cls(corpus=corpus, config=config, artifacts=artifacts, index_config=index_config)

    @classmethod
    def from_result(
        cls,
        result: PipelineResult,
        config: PipelineConfig | None = None,
        artifacts: IndexArtifactStore | None = None,
        index_config: IndexConfig | None = None,
    ) -> "GitTables":
        """Wrap a :class:`PipelineResult` from a previous construction run."""
        return cls(
            corpus=result.corpus,
            result=result,
            config=config,
            artifacts=artifacts,
            index_config=index_config,
        )

    @classmethod
    def load(
        cls,
        directory: str | os.PathLike[str],
        cache_shards: int = 2,
        use_artifacts: bool = True,
        index_config: IndexConfig | None = None,
    ) -> "GitTables":
        """Load a corpus previously persisted with :meth:`save`.

        The storage format is auto-detected: sharded directories come
        back lazily (only the manifest is read up front; ``cache_shards``
        bounds resident parsed shards), legacy directories load into
        memory.

        Sharded directories also attach the persistent **index artifact
        store** under ``<directory>/artifacts`` (disable with
        ``use_artifacts=False``): the search, completion, type-detection
        and KG-benchmark caches warm from fingerprint-guarded mmap'd
        artifacts on first use — zero corpus-wide embedding work when
        the artifacts are valid, a build-and-publish on first miss.
        Call :meth:`warm` to resolve them eagerly.
        """
        corpus = GitTablesCorpus.load(directory, cache_shards=cache_shards)
        artifacts = None
        if use_artifacts and is_sharded_dir(directory):
            artifacts = IndexArtifactStore.for_corpus_dir(directory)
        return cls(corpus=corpus, artifacts=artifacts, index_config=index_config)

    # -- corpus access -----------------------------------------------------

    @property
    def corpus(self) -> GitTablesCorpus:
        return self._corpus

    @property
    def result(self) -> PipelineResult | None:
        """The construction run's result (None for wrapped/loaded corpora)."""
        return self._result

    @property
    def pipeline_report(self) -> PipelineReport | None:
        """Per-stage streaming instrumentation of the construction run."""
        return self._result.pipeline_report if self._result else None

    def __len__(self) -> int:
        return len(self._corpus)

    def __repr__(self) -> str:
        return f"GitTables({len(self._corpus)} tables, name={self._corpus.name!r})"

    def topics(self) -> list[str]:
        return self._corpus.topics()

    def columnar(self) -> ColumnarProjection:
        """The corpus' materialized columnar metadata projection.

        Resolved once per session: a projection already attached to the
        corpus is reused, a persisted ``stats-projection`` artifact
        matching the store's content fingerprint is mmap'd back, and
        otherwise the projection is built with one corpus scan (and
        published for the next session when a store is attached). All
        statistics surfaces — :meth:`stats`, :meth:`annotation_stats`,
        :class:`~repro.storage.columnar.TablePredicate` filters — run
        engine-side over these arrays afterwards.
        """
        return ensure_projection(self._corpus, self._artifacts)

    def stats(self) -> CorpusStatistics:
        """Structural corpus statistics, computed on the columnar engine."""
        return CorpusStatistics.from_projection(self.columnar())

    def annotation_stats(self) -> AnnotationStatistics:
        """Annotation statistics, computed on the columnar engine."""
        return AnnotationStatistics.from_projection(self.columnar())

    def save(
        self,
        directory: str | os.PathLike[str],
        shard_size: int = DEFAULT_SHARD_SIZE,
        format: str = "sharded",
    ) -> None:
        """Persist the corpus atomically (sharded JSONL by default).

        Sharded saves carry the index artifacts along: any index already
        built in this session (search engine, completion matrix, KG
        benchmarks) is published into ``<directory>/artifacts`` under
        the saved manifest's content fingerprint, so a later
        :meth:`load` of the directory warms from mmap'd artifacts
        instead of re-embedding the corpus. Indexes built before a
        corpus mutation (tables added since) are *not* published — they
        no longer describe the saved bytes.
        """
        self._corpus.save(directory, shard_size=shard_size, format=format)
        if format != "sharded":
            return
        # Corpora are append-only (duplicate ids rejected, no removal),
        # so a size match means the index still describes the corpus.
        current_size = len(self._corpus)
        artifacts = IndexArtifactStore.for_corpus_dir(directory)
        fingerprint = ShardedJsonlStore(directory).content_fingerprint()
        if self._search_engine is not None and self._search_engine._corpus_size == current_size:
            self._search_engine.publish_artifacts(artifacts, corpus_fingerprint=fingerprint)
        if self._completer is not None and self._completer._corpus_size == current_size:
            self._completer.publish_artifacts(artifacts, corpus_fingerprint=fingerprint)
        for benchmark in self._kg_benchmarks.values():
            if benchmark.corpus_size == current_size:
                benchmark.publish_artifacts(artifacts, corpus_fingerprint=fingerprint)
        # The columnar stats projection rides along too: an attached
        # current projection is republished under the saved manifest's
        # fingerprint, otherwise one is built from the corpus being
        # saved (the tables were just streamed to disk, so the arrays
        # describe exactly the saved bytes).
        projection = self._corpus.projection
        if projection is None:
            projection = ColumnarProjection.from_corpus(self._corpus)
            self._corpus.attach_projection(projection)
        try_publish(publish_projection, artifacts, projection, corpus_fingerprint=fingerprint)

    def extend(
        self,
        target_tables: int | None = None,
        topics: int | None = None,
        processes: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        shard_size: int = DEFAULT_SHARD_SIZE,
    ) -> "GitTables":
        """Grow the backing store in place — O(new tables), not O(corpus).

        Reopens this session's sharded store directory for a new
        **epoch**: the original build configuration is re-materialized
        from the recorded build metadata, the growth axes
        (``target_tables``, ``topics``) are raised, and the construction
        pipeline resumes exactly where the sealed store left off — only
        the new tables are generated, annotated and appended (as new
        shards under the next epoch; existing shard files are never
        rewritten). The resulting directory is byte-identical to a
        from-scratch build of the larger configuration, modulo the
        manifest's epoch trailer.

        The session's engines then **delta-refresh** rather than
        rebuild: search and completion load their superseded artifacts,
        embed only the appended tables' schemas, and republish under the
        grown corpus fingerprint (the columnar stats projection extends
        the same way during finalize). Superseded corpus-keyed artifacts
        are pruned only *after* every engine has republished, so a crash
        mid-refresh leaves the next session able to delta-refresh from
        the same prior-epoch artifacts.

        Requires a store-backed session whose build metadata carries a
        verifiable generator fingerprint (corpora built from a custom
        pre-built ``instance`` cannot prove extension compatibility).
        Growth axes must not shrink. Returns ``self``.
        """
        directory = getattr(self._corpus.store, "directory", None)
        if directory is None or not is_sharded_dir(directory):
            raise CorpusError(
                "extend() requires a session over a sharded store directory "
                "(build with store_dir=... or load one)"
            )
        stored = load_build_meta(directory)
        if stored is None:
            raise CorpusError(
                f"cannot extend corpus at {directory}: the directory holds "
                "no build metadata to grow from"
            )
        config_payload = stored.get("config")
        generator_payload = stored.get("generator")
        if not isinstance(config_payload, dict) or not isinstance(generator_payload, dict):
            raise CorpusError(
                f"cannot extend corpus at {directory}: the build carries no "
                "verifiable generator fingerprint (it was built from a "
                "custom pre-built instance)"
            )
        config = PipelineConfig.from_dict(config_payload)
        if target_tables is not None:
            config = config.replace(target_tables=int(target_tables))
        if topics is not None:
            config = config.replace(
                extraction=dataclasses.replace(config.extraction, topic_count=int(topics))
            )
        # JSON round-trips turn the delimiter weight tuples into lists.
        generator_payload = dict(generator_payload)
        if "delimiters" in generator_payload:
            generator_payload["delimiters"] = tuple(
                (str(delimiter), float(weight))
                for delimiter, weight in generator_payload["delimiters"]
            )
        generator = GeneratorConfig(**generator_payload)
        builder = CorpusBuilder(
            config=config, generator_config=generator, batch_size=batch_size
        )
        result = builder.build(
            store_dir=directory, shard_size=shard_size, processes=processes, extend=True
        )
        self._corpus = result.corpus
        self._result = result
        self.config = config
        if self._artifacts is None:
            self._artifacts = IndexArtifactStore.for_corpus_dir(directory)
        self._search_engine = None
        self._completer = None
        self._kg_benchmarks.clear()
        # Warm both engines now: their constructors delta-refresh from
        # the superseded artifacts (tail-only embedding) and republish
        # under the grown fingerprint with the corpus-keyed prune
        # deferred — then one sweep retires the prior epoch's artifacts.
        _ = self.search_engine
        _ = self.completer
        self._artifacts.prune(ShardedJsonlStore(directory).content_fingerprint())
        return self

    def compact(self, shard_size: int | None = None) -> dict:
        """Re-shard the backing store in place — online, zero re-embedding.

        Rewrites the sealed store directory to ``shard_size`` tables per
        shard (``None`` keeps the current size, reducing the call to
        cleanup of a previously crashed compaction) and publishes the
        result as a new manifest **generation**. The corpus content is
        untouched — same tables, same order — so the store keeps its
        ``content_fingerprint`` and every derived artifact (search and
        completion indexes, ANN tiers, the columnar projection) remains
        valid as-is: the session simply reopens the new layout and
        re-resolves its engines from the same mmap'd artifacts.

        Safe to run while a :meth:`serve` pool is serving the same
        directory: workers follow the generation bump through their
        store-version probe and hot-reload (visible in
        ``QueryService.metrics()`` under ``workers.store_generation`` /
        ``workers.generations``), and answers are bit-identical before,
        during, and after the swap. Returns the compaction report as a
        plain dict (generation, shard counts, fingerprint, files swept).
        """
        from .storage.compaction import compact_store

        directory = getattr(self._corpus.store, "directory", None)
        if directory is None or not is_sharded_dir(directory):
            raise CorpusError(
                "compact() requires a session over a sharded store directory "
                "(build with store_dir=... or load one)"
            )
        report = compact_store(directory, shard_size=shard_size)
        if report.rewritten:
            # Reopen the new layout; engines rebuild lazily from the
            # unchanged (fingerprint-pinned) artifacts — no embedding.
            cache_shards = getattr(self._corpus.store, "cache_shards", 2)
            self._corpus = GitTablesCorpus.load(directory, cache_shards=cache_shards)
            self._search_engine = None
            self._completer = None
            self._kg_benchmarks.clear()
        return report.to_dict()

    # -- shared lazy state -------------------------------------------------

    @property
    def encoder(self) -> SentenceEncoder:
        """The shared sentence encoder (embedding cache included)."""
        return self._encoder

    @property
    def artifacts(self) -> IndexArtifactStore | None:
        """The attached persistent index artifact store, if any."""
        return self._artifacts

    @property
    def search_engine(self) -> TableSearchEngine:
        """The data-search engine, built once over the corpus schemas.

        With an artifact store attached, "built" means mmap'd from a
        valid persisted artifact; a fresh build publishes one.
        """
        if self._search_engine is None:
            self._search_engine = TableSearchEngine(
                self._corpus,
                encoder=self._encoder,
                artifacts=self._artifacts,
                index_config=self._index_config,
            )
        return self._search_engine

    @property
    def completer(self) -> NearestCompletion:
        """The schema-completion index, built once (or mmap'd, see above)."""
        if self._completer is None:
            self._completer = NearestCompletion(
                self._corpus,
                encoder=self._encoder,
                artifacts=self._artifacts,
                index_config=self._index_config,
            )
        return self._completer

    def kg_benchmark(self, min_columns: int = 3, min_rows: int = 5) -> KGMatchingBenchmark:
        """The curated CTA benchmark, cached per curation thresholds."""
        key = (min_columns, min_rows)
        if key not in self._kg_benchmarks:
            self._kg_benchmarks[key] = KGMatchingBenchmark.from_corpus(
                self._corpus,
                min_columns=min_columns,
                min_rows=min_rows,
                artifacts=self._artifacts,
            )
        return self._kg_benchmarks[key]

    @property
    def index_config(self) -> IndexConfig:
        """The ANN-tier configuration this session builds indexes with."""
        return self._index_config

    def index_stats(self) -> dict:
        """Per-engine index-tier instrumentation for already-built engines.

        Engines not built yet are absent — this never triggers a build,
        so it is safe on the serving hot path.
        """
        stats: dict = {}
        if self._search_engine is not None:
            stats["search"] = self._search_engine.index_stats()
        if self._completer is not None:
            stats["completion"] = self._completer.index_stats()
        return stats

    def warm(self) -> "GitTables":
        """Resolve every lazily-built index now (mmap'd when artifacts hold
        valid versions, built-and-published otherwise); returns self."""
        _ = self.search_engine
        _ = self.completer
        _ = self.kg_benchmark()
        return self

    def reset_caches(self, invalidate_artifacts: bool = True) -> None:
        """Drop every lazily-built artefact (after corpus mutation).

        With an artifact store attached, the *persisted* artifacts are
        deleted as well by default — they describe the pre-mutation
        corpus. Pass ``invalidate_artifacts=False`` to only drop the
        in-memory state (the fingerprint guard still protects against
        stale reads if the stored corpus bytes changed).
        """
        self._search_engine = None
        self._completer = None
        self._kg_benchmarks.clear()
        if invalidate_artifacts and self._artifacts is not None:
            self._artifacts.invalidate()

    # -- applications ------------------------------------------------------

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Natural-language data search over embedded schemas (§5.3)."""
        return self.search_engine.search(query, k=k)

    def search_batch(self, queries: list[str], k: int = 10) -> list[list[SearchResult]]:
        """Batched data search: many queries against one batched index query."""
        return self.search_engine.search_batch(list(queries), k=k)

    def complete_schema(
        self, prefix: list[str] | tuple[str, ...], k: int = 10
    ) -> list[SchemaCompletion]:
        """NearestCompletion (Algorithm 1) suggestions for a prefix (§5.2)."""
        return self.completer.complete(prefix, k=k)

    def evaluate_completion(
        self,
        full_schema: list[str] | tuple[str, ...],
        prefix_length: int = 3,
        k: int = 10,
    ) -> CompletionEvaluation:
        """Completion relevance for a known full schema (paper Table 8)."""
        return self.completer.evaluate(full_schema, prefix_length=prefix_length, k=k)

    def detect_types(
        self,
        eval_corpus: GitTablesCorpus | "GitTables" | None = None,
        **experiment_options,
    ) -> TypeDetectionResult:
        """Sherlock-style semantic type detection trained on this corpus (§5.1).

        With no argument: k-fold cross-validation within this corpus.
        With ``eval_corpus``: train here, evaluate there (the transfer
        setting of Table 7). ``experiment_options`` are forwarded to
        :class:`TypeDetectionExperiment` (``columns_per_type``,
        ``epochs``, ``n_splits``, ``seed``, …).
        """
        experiment_options.setdefault("artifacts", self._artifacts)
        experiment = TypeDetectionExperiment(**experiment_options)
        if eval_corpus is None:
            return experiment.within_corpus(self._corpus)
        other = eval_corpus.corpus if isinstance(eval_corpus, GitTables) else eval_corpus
        return experiment.cross_corpus(self._corpus, other)

    def match_kg(
        self,
        ontology: str = "dbpedia",
        matcher: object | None = None,
        min_columns: int = 3,
        min_rows: int = 5,
    ) -> MatcherScore:
        """Score a table-to-KG matcher on the curated benchmark (§5.3).

        ``matcher`` defaults to the canonical value-linking baseline;
        pass ``PatternMatcher()`` (or any object with an
        ``annotate_column(values)`` method) for alternatives.
        """
        if matcher is None:
            matcher = ValueLinkingMatcher()
        benchmark = self.kg_benchmark(min_columns=min_columns, min_rows=min_rows)
        return evaluate_matcher(matcher, benchmark, ontology)

    def match_kg_all(
        self, min_columns: int = 3, min_rows: int = 5
    ) -> list[MatcherScore]:
        """Both baseline matchers on both ontologies (paper Figure 6a)."""
        benchmark = self.kg_benchmark(min_columns=min_columns, min_rows=min_rows)
        return [
            evaluate_matcher(matcher, benchmark, ontology)
            for matcher in (ValueLinkingMatcher(), PatternMatcher())
            for ontology in ("dbpedia", "schema_org")
        ]

    # -- serving -----------------------------------------------------------

    def serve(self, config: "ServingConfig | None" = None, **overrides):
        """Start a concurrent query service over this session.

        Returns a started
        :class:`~repro.serving.service.QueryService`: a micro-batcher
        coalesces concurrent ``search`` / ``complete_schema`` /
        ``detect_types`` requests into the existing batch kernels, and
        (with ``workers > 0``) a pool of worker processes answers them,
        each mmap'ing the store's persisted index artifacts instead of
        re-embedding the corpus. Results are bit-identical to the same
        single-shot calls on this session. ``overrides`` are
        :class:`~repro.config.ServingConfig` fields (``workers=0`` runs
        in-process — the only mode for sessions without a store
        directory). Close the service when done (it is a context
        manager)::

            with gt.serve(workers=4) as service:
                service.search("population by country", k=5)

        Store-backed sessions warm (and persist) the search and
        completion artifacts up front so every worker starts with an
        mmap, not an embed.
        """
        from .config import ServingConfig
        from .serving.service import QueryService

        if config is None:
            config = ServingConfig()
        if overrides:
            config = config.replace(**overrides)
        if config.index is None:
            # Workers must build (or mmap) their indexes with the same
            # ANN-tier settings this session uses, or served results
            # would diverge from single-shot calls on the session.
            config = config.replace(index=self._index_config)
        directory = None
        store_directory = getattr(self._corpus.store, "directory", None)
        if store_directory is not None and is_sharded_dir(store_directory):
            directory = store_directory
        if config.workers > 0 and directory is not None:
            # Resolve-or-publish the served indexes before any worker
            # spawns: each worker then warms from the mmap'd artifacts.
            _ = self.search_engine
            _ = self.completer
        return QueryService(session=self, config=config, directory=directory)

    def shift_report(
        self, other: GitTablesCorpus | "GitTables", **options
    ) -> DomainShiftResult:
        """Data-shift detection against another corpus (§4.2).

        ``options`` are forwarded to
        :func:`~repro.applications.domain_classifier.detect_data_shift`
        (``n_columns_per_corpus``, ``n_splits``, ``n_estimators``,
        ``seed``, …).
        """
        other_corpus = other.corpus if isinstance(other, GitTables) else other
        return detect_data_shift(self._corpus, other_corpus, **options)
