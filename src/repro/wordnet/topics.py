"""Topic selection for GitHub topic queries (paper §3.1-3.2).

The paper selects 67K WordNet nouns as topics; this module selects a
configurable number of topics from the embedded lexicon, always excluding
the blocklisted nouns, and always preferring the paper's headline topics
("thing", "object", "id") first so small configurations still exercise the
largest subsets mentioned in §4.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._rand import derive_rng
from .lexicon import NounLexicon, blocked_topics, load_default_lexicon

__all__ = ["TopicSelection", "select_topics", "PRIORITY_TOPICS"]

#: Topics the paper singles out as the largest subsets of GitTables 1M.
PRIORITY_TOPICS: tuple[str, ...] = ("thing", "object", "id")


@dataclass(frozen=True)
class TopicSelection:
    """The outcome of topic selection."""

    topics: tuple[str, ...]
    excluded: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.topics)

    def __iter__(self):
        return iter(self.topics)


def select_topics(
    count: int,
    lexicon: NounLexicon | None = None,
    seed: int = 0,
    extra_blocked: frozenset[str] | set[str] | None = None,
) -> TopicSelection:
    """Select ``count`` topics from the lexicon.

    Priority topics come first; the remainder is a seeded random sample of
    the rest of the lexicon. Blocked topics are never selected and are
    reported in :attr:`TopicSelection.excluded`.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    lexicon = lexicon or load_default_lexicon()
    blocked = set(blocked_topics())
    if extra_blocked:
        blocked |= set(extra_blocked)

    available = [lemma for lemma in lexicon.lemmas() if lemma not in blocked]
    excluded = tuple(sorted(set(lexicon.lemmas()) & blocked))

    selected: list[str] = [topic for topic in PRIORITY_TOPICS if topic in available][:count]
    remaining = [lemma for lemma in available if lemma not in selected]

    needed = count - len(selected)
    if needed > 0 and remaining:
        rng = derive_rng(seed, "topic-selection")
        take = min(needed, len(remaining))
        picks = rng.choice(len(remaining), size=take, replace=False)
        selected.extend(remaining[i] for i in sorted(picks))

    return TopicSelection(topics=tuple(selected), excluded=excluded)
