"""Noun lexicon with hypernym structure.

A drastically scaled-down WordNet: every noun has one hypernym (parent)
and one lexicographer-style domain. The lexicon supports the operations
the pipeline needs — listing nouns, walking hypernym chains, filtering by
domain — and nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass

from ._nouns import BLOCKED_TOPICS, NOUN_TRIPLES

__all__ = ["NounEntry", "NounLexicon", "load_default_lexicon"]


@dataclass(frozen=True)
class NounEntry:
    """A single noun: its lemma, hypernym (parent noun), and domain."""

    lemma: str
    hypernym: str
    domain: str

    @property
    def is_root(self) -> bool:
        """True for the unique beginner ('entity')."""
        return self.lemma == self.hypernym


class NounLexicon:
    """A queryable collection of :class:`NounEntry` objects."""

    def __init__(self, entries: list[NounEntry]) -> None:
        self._entries: dict[str, NounEntry] = {}
        for entry in entries:
            if entry.lemma in self._entries:
                raise ValueError(f"duplicate noun {entry.lemma!r}")
            self._entries[entry.lemma] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lemma: str) -> bool:
        return lemma in self._entries

    def __iter__(self):
        return iter(self._entries.values())

    def get(self, lemma: str) -> NounEntry | None:
        return self._entries.get(lemma)

    def lemmas(self) -> list[str]:
        """All lemmas in insertion order."""
        return list(self._entries)

    def hypernym_chain(self, lemma: str, max_depth: int = 32) -> list[str]:
        """Walk the hypernym chain from ``lemma`` up to the root."""
        chain: list[str] = []
        current = self._entries.get(lemma)
        depth = 0
        while current is not None and depth < max_depth:
            chain.append(current.lemma)
            if current.is_root:
                break
            current = self._entries.get(current.hypernym)
            depth += 1
        return chain

    def domain_of(self, lemma: str) -> str | None:
        entry = self._entries.get(lemma)
        return entry.domain if entry else None

    def by_domain(self, domain: str) -> list[NounEntry]:
        """All entries in the given lexicographer domain."""
        return [entry for entry in self._entries.values() if entry.domain == domain]

    def domains(self) -> list[str]:
        """The sorted set of domains present in the lexicon."""
        return sorted({entry.domain for entry in self._entries.values()})


_DEFAULT_LEXICON: NounLexicon | None = None


def load_default_lexicon() -> NounLexicon:
    """Return the embedded lexicon (cached singleton)."""
    global _DEFAULT_LEXICON
    if _DEFAULT_LEXICON is None:
        entries = [NounEntry(lemma, hypernym, domain) for lemma, hypernym, domain in NOUN_TRIPLES]
        _DEFAULT_LEXICON = NounLexicon(entries)
    return _DEFAULT_LEXICON


def blocked_topics() -> frozenset[str]:
    """Topics excluded to avoid the 'WordNet effect'."""
    return BLOCKED_TOPICS
