"""WordNet-noun substrate.

The paper selects 67K unique English nouns from WordNet as query "topics"
(§3.1). Offline we embed a curated noun lexicon with hypernym links and
topical domains, plus the offensive-topic blocklist used to avoid the
"WordNet effect".
"""

from .lexicon import NounEntry, NounLexicon, load_default_lexicon
from .topics import TopicSelection, select_topics

__all__ = [
    "NounEntry",
    "NounLexicon",
    "TopicSelection",
    "load_default_lexicon",
    "select_topics",
]
