"""Reproduction of *GitTables: A Large-Scale Corpus of Relational Tables*.

Two public layers front everything:

* :mod:`repro.pipeline` — the streaming stage-graph API. The paper's
  Figure-1 pipeline (extraction → parsing → filtering → annotation →
  curation) is a composable graph of pull-driven generator stages; the
  runner streams tables in configurable batches, stops the whole graph
  the moment the corpus target is met, and collects per-stage counters
  and timings into a :class:`~repro.pipeline.PipelineReport`.
* :class:`GitTables` — the session facade. It owns a built corpus and
  lazily constructs the paper's applications behind uniform methods,
  sharing the embedding and index caches between them.

Quickstart::

    from repro import GitTables, PipelineConfig

    gt = GitTables.build(PipelineConfig.small())
    print(len(gt), "tables;", gt.pipeline_report.summary())

    gt.search("status and sales amount per product", k=3)   # data search §5.3
    gt.complete_schema(["order_id", "order_date"], k=5)     # completion §5.2
    gt.detect_types(columns_per_type=30, epochs=10)         # type detection §5.1
    gt.match_kg(ontology="dbpedia")                         # KG matching §5.3

The legacy entry points (:func:`build_corpus`, :class:`CorpusBuilder`)
remain as thin wrappers over the streaming pipeline and return the same
:class:`PipelineResult` as before.

Corpus storage is pluggable (:mod:`repro.storage`): the corpus container
delegates to an in-memory dict, a lazy sharded-JSONL reader, or the
append-only sharded writer used by resumable builds —
``GitTables.build(config, store_dir="corpus/")`` streams to disk, can be
killed and resumed, and serves applications without loading the corpus
into memory.

Substrates: ``dataframe``, ``wordnet``, ``ontology``, ``embeddings``,
``anonymize``, ``github``; corpus construction in ``core``; storage
backends in ``storage``; ML components in ``ml``; the applications in
``applications``; evaluation datasets in ``benchdata``; experiment
drivers regenerating every paper table and figure in ``experiments``.
"""

from .api import GitTables
from .config import (
    AnnotationConfig,
    CurationConfig,
    ExtractionConfig,
    PipelineConfig,
    ServingConfig,
)
from .core.corpus import AnnotatedTable, GitTablesCorpus
from .core.pipeline import CorpusBuilder, PipelineResult, build_corpus
from .core.stats import AnnotationStatistics, CorpusStatistics
from .dataframe import Table, parse_csv
from .pipeline import Pipeline, PipelineReport, Stage, StageContext
from .serving import QueryService
from .storage import CorpusStore, InMemoryStore, ShardedCorpusWriter, ShardedJsonlStore

__all__ = [
    "AnnotatedTable",
    "AnnotationConfig",
    "AnnotationStatistics",
    "CorpusBuilder",
    "CorpusStatistics",
    "CorpusStore",
    "CurationConfig",
    "ExtractionConfig",
    "GitTables",
    "GitTablesCorpus",
    "InMemoryStore",
    "Pipeline",
    "PipelineConfig",
    "PipelineReport",
    "PipelineResult",
    "QueryService",
    "ServingConfig",
    "ShardedCorpusWriter",
    "ShardedJsonlStore",
    "Stage",
    "StageContext",
    "Table",
    "build_corpus",
    "parse_csv",
]

__version__ = "2.0.0"
