"""Reproduction of *GitTables: A Large-Scale Corpus of Relational Tables*.

The package is organised as a set of substrates (``dataframe``,
``wordnet``, ``ontology``, ``embeddings``, ``anonymize``, ``github``), the
core corpus-construction pipeline (``core``), machine-learning components
(``ml``), the paper's applications (``applications``), evaluation datasets
(``benchdata``) and experiment drivers regenerating every table and figure
(``experiments``).

Quickstart::

    from repro import PipelineConfig, build_corpus

    result = build_corpus(PipelineConfig.small())
    print(len(result.corpus), "tables")
"""

from .config import AnnotationConfig, CurationConfig, ExtractionConfig, PipelineConfig
from .core.corpus import AnnotatedTable, GitTablesCorpus
from .core.pipeline import CorpusBuilder, PipelineResult, build_corpus
from .core.stats import AnnotationStatistics, CorpusStatistics
from .dataframe import Table, parse_csv

__all__ = [
    "AnnotatedTable",
    "AnnotationConfig",
    "AnnotationStatistics",
    "CorpusBuilder",
    "CorpusStatistics",
    "CurationConfig",
    "ExtractionConfig",
    "GitTablesCorpus",
    "PipelineConfig",
    "PipelineResult",
    "Table",
    "build_corpus",
    "parse_csv",
]

__version__ = "1.0.0"
