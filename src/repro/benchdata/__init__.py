"""Evaluation datasets.

* :mod:`~repro.benchdata.webtables` — synthetic Web-table corpora
  standing in for WDC WebTables / VizNet (small dimensions, Web-style
  column names), used as the contrast class for Tables 1, 4, 7 and the
  domain classifier.
* :mod:`~repro.benchdata.t2dv2` — a synthetic T2Dv2-style gold standard
  used to evaluate annotation quality (§4.3).
* :mod:`~repro.benchdata.ctu` — the CTU Prague relational-learning
  schemas used by the schema-completion experiment (Table 8).
"""

from .ctu import CTU_SCHEMAS, CTUSchema
from .t2dv2 import T2Dv2Benchmark, build_t2dv2
from .webtables import WebTableConfig, build_webtables_corpus

__all__ = [
    "CTU_SCHEMAS",
    "CTUSchema",
    "T2Dv2Benchmark",
    "WebTableConfig",
    "build_t2dv2",
    "build_webtables_corpus",
]
