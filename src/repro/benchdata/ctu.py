"""CTU Prague Relational Learning Repository schemas (paper §5.2, Table 8).

The paper evaluates schema completion with prefixes from three real
database tables: the ``employees`` table of the Employee database, the
``orders`` table of the ClassicModels database, and the ``WorkOrder``
table of the AdventureWorks database. The schemas below follow the
published database documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CTUSchema", "CTU_SCHEMAS", "schema_by_name"]


@dataclass(frozen=True)
class CTUSchema:
    """One CTU database table schema."""

    database: str
    table: str
    attributes: tuple[str, ...]

    def prefix(self, length: int = 3) -> tuple[str, ...]:
        """The first ``length`` attributes, used as the completion target."""
        if length < 1 or length > len(self.attributes):
            raise ValueError("prefix length out of range")
        return self.attributes[:length]


CTU_SCHEMAS: tuple[CTUSchema, ...] = (
    CTUSchema(
        database="Employee",
        table="employees",
        attributes=(
            "emp_no", "birth_date", "first_name", "last_name", "gender", "hire_date",
        ),
    ),
    CTUSchema(
        database="ClassicModels",
        table="orders",
        attributes=(
            "orderNumber", "orderDate", "requiredDate", "shippedDate", "status",
            "comments", "customerNumber",
        ),
    ),
    CTUSchema(
        database="AdventureWorks",
        table="WorkOrder",
        attributes=(
            "WorkOrderID", "ProductID", "OrderQty", "StockedQty", "ScrappedQty",
            "StartDate", "EndDate", "DueDate", "ScrapReasonID", "ModifiedDate",
        ),
    ),
)


def schema_by_name(table: str) -> CTUSchema:
    """Look up a CTU schema by table name."""
    for schema in CTU_SCHEMAS:
        if schema.table.lower() == table.lower():
            return schema
    raise KeyError(table)
