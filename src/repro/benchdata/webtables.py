"""Synthetic Web-table corpora (WDC WebTables / VizNet stand-ins).

Web tables differ from GitTables along exactly the axes the paper
analyses: they are small (≈15 rows × 5 columns), their column names are
clean natural-language headers dominated by ``name``/``date``/``title``/
``artist``/``description`` (the WDC top types quoted in §4.2), their
values are entity-like strings rather than identifiers and measurements,
and the numeric/string split is roughly 50/50. This module generates such
corpora as :class:`~repro.core.corpus.GitTablesCorpus` objects (annotated
with the same pipeline) so every comparison experiment can treat the two
corpora uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rand import derive_rng
from ..config import AnnotationConfig
from ..core.annotation import AnnotationPipeline, TableAnnotations
from ..core.corpus import AnnotatedTable, GitTablesCorpus
from ..dataframe.table import Table
from ..github.values import generate_values

__all__ = ["WebTableConfig", "build_webtables_corpus", "WEB_COLUMN_POOL"]

#: (column name, value kind, relative weight). Names mirror the WDC
#: WebTables top types reported in the paper: name, date, title, artist,
#: description, size, type, location, model, year.
WEB_COLUMN_POOL: tuple[tuple[str, str, float], ...] = (
    ("name", "person_name", 10.0),
    ("date", "date", 8.0),
    ("title", "title", 8.0),
    ("artist", "artist", 6.0),
    ("description", "description", 6.0),
    ("size", "quantity", 4.0),
    ("type", "category", 5.0),
    ("location", "city", 5.0),
    ("model", "product", 4.0),
    ("year", "year", 6.0),
    ("country", "country", 4.0),
    ("city", "city", 4.0),
    ("address", "address", 2.5),
    ("status", "status", 2.0),
    ("class", "category", 2.0),
    ("team", "team", 3.0),
    ("player", "person_name", 3.0),
    ("album", "title", 3.0),
    ("genre", "genre", 3.0),
    ("rank", "rank", 5.0),
    ("score", "score", 4.0),
    ("price", "price", 4.0),
    ("rating", "rating", 3.0),
    ("population", "population", 3.0),
    ("area", "area", 2.5),
    ("points", "points", 3.5),
    ("wins", "wins", 2.5),
    ("goals", "goals", 2.5),
    ("votes", "count", 2.0),
    ("capacity", "quantity", 1.5),
    ("number", "count", 2.5),
    ("total", "amount", 2.0),
    ("percentage", "percentage", 1.5),
    ("year built", "year", 1.5),
    ("length", "distance", 1.5),
    ("age", "age", 2.0),
    ("capital", "city", 1.5),
    ("language", "language", 1.5),
    ("author", "person_name", 3.0),
    ("publisher", "brand", 1.5),
    ("director", "person_name", 1.5),
    ("duration", "duration", 1.5),
    ("height", "height", 1.5),
    ("weight", "weight", 1.5),
    ("nationality", "nationality", 1.0),
    ("notes", "comment", 2.0),
)


@dataclass(frozen=True)
class WebTableConfig:
    """Shape of the synthetic Web-table corpus."""

    n_tables: int = 300
    mean_rows: float = 15.0
    mean_cols: float = 5.0
    corpus_name: str = "viznet"
    #: Probability that a column's values are partially contaminated with
    #: values of another kind (Web tables are noisy scrapes).
    column_noise_probability: float = 0.3
    #: Fraction of contaminated values within a noisy column.
    noise_fraction: float = 0.3
    seed: int = 7

    @classmethod
    def small(cls, seed: int = 7) -> "WebTableConfig":
        return cls(n_tables=80, seed=seed)


def _pick_pool(rng: np.random.Generator, pools: tuple[tuple[str, ...], ...], size: int) -> list[str]:
    """Draw all values of a column from one randomly chosen pool.

    Different Web pages render the same semantic type in different styles,
    and some styles are shared between types (both "status" and "class"
    columns can contain words like "Premium" or "Standard"), which is what
    keeps the within-VizNet type-detection task from being trivial.
    """
    pool = pools[int(rng.integers(0, len(pools)))]
    picks = rng.integers(0, len(pool), size=size)
    return [pool[i] for i in picks]


_SHARED_TIER_POOL = ("Premium", "Standard", "Economy", "Basic", "Gold", "Silver")


def _web_status(rng: np.random.Generator, size: int) -> list[str]:
    """Web-style status values (prose-like, unlike GitTables' DB codes)."""
    pools = (
        ("Active", "Inactive", "Pending approval", "Sold out", "In stock",
         "Discontinued", "Coming soon", "Out of print"),
        ("Yes", "No", "Unknown"),
        _SHARED_TIER_POOL,
        ("Won", "Lost", "Drawn", "Postponed"),
    )
    return _pick_pool(rng, pools, size)


def _web_class(rng: np.random.Generator, size: int) -> list[str]:
    pools = (
        ("Class A", "Class B", "Class C", "Type I", "Type II", "Group 1", "Group 2"),
        _SHARED_TIER_POOL,
        ("Heavyweight", "Middleweight", "Lightweight", "Featherweight"),
        ("First class", "Second class", "Third class"),
    )
    return _pick_pool(rng, pools, size)


def _web_name(rng: np.random.Generator, size: int) -> list[str]:
    """Web tables list names as 'Last, First' about half of the time."""
    firsts = generate_values("first_name", rng, size)
    lasts = generate_values("last_name", rng, size)
    if rng.random() < 0.5:
        return [f"{last}, {first}" for first, last in zip(firsts, lasts)]
    return [f"{first} {last}" for first, last in zip(firsts, lasts)]


def _web_date(rng: np.random.Generator, size: int) -> list[str]:
    """Web pages render dates as prose ('March 4, 2018'), not ISO strings."""
    months = ("January", "February", "March", "April", "May", "June", "July",
              "August", "September", "October", "November", "December")
    month_picks = rng.integers(0, 12, size=size)
    days = rng.integers(1, 29, size=size)
    years = rng.integers(1960, 2022, size=size)
    return [f"{months[m]} {d}, {y}" for m, d, y in zip(month_picks, days, years)]


def _web_price(rng: np.random.Generator, size: int) -> list[str]:
    values = rng.uniform(0.5, 5000.0, size=size)
    return [f"${value:,.2f}" for value in values]


def _web_population(rng: np.random.Generator, size: int) -> list[str]:
    values = rng.integers(1000, 10_000_000, size=size)
    return [f"{int(value):,}" for value in values]


def _web_year(rng: np.random.Generator, size: int) -> list[str]:
    """Season-style years ('1995–96') mixed with plain years."""
    years = rng.integers(1950, 2022, size=size)
    seasonal = rng.random(size) < 0.4
    return [
        f"{year}–{(year + 1) % 100:02d}" if is_seasonal else str(year)
        for year, is_seasonal in zip(years, seasonal)
    ]


def _web_description(rng: np.random.Generator, size: int) -> list[str]:
    if rng.random() < 0.3:
        # Some description columns on the Web are little more than titles.
        return generate_values("title", rng, size)
    openers = ("A comprehensive", "An overview of", "The official", "A detailed",
               "An introduction to", "The complete")
    subjects = ("guide to the subject", "listing of items", "summary of results",
                "history of the series", "catalogue of entries", "review of the season")
    first = rng.integers(0, len(openers), size=size)
    second = rng.integers(0, len(subjects), size=size)
    return [f"{openers[i]} {subjects[j]}." for i, j in zip(first, second)]


def _web_address(rng: np.random.Generator, size: int) -> list[str]:
    streets = generate_values("address", rng, size)
    cities = generate_values("city", rng, size)
    return [f"{street}, {city}" for street, city in zip(streets, cities)]


#: Column-name specific value generators giving Web tables a different
#: style for the *same* semantic types found in GitTables; this is what
#: produces the data shift (§4.2) and the cross-corpus F1 drop (Table 7).
WEB_VALUE_OVERRIDES = {
    "status": _web_status,
    "class": _web_class,
    "name": _web_name,
    "player": _web_name,
    "author": _web_name,
    "director": _web_name,
    "description": _web_description,
    "notes": _web_description,
    "address": _web_address,
    "date": _web_date,
    "price": _web_price,
    "population": _web_population,
    "year": _web_year,
}


def _sample_dimension(rng: np.random.Generator, mean: float, minimum: int, maximum: int) -> int:
    sigma = 0.5
    mu = float(np.log(max(mean, 2.0))) - sigma**2 / 2
    return int(np.clip(round(rng.lognormal(mu, sigma)), minimum, maximum))


def build_webtables_corpus(
    config: WebTableConfig | None = None,
    annotation_config: AnnotationConfig | None = None,
    annotate: bool = True,
) -> GitTablesCorpus:
    """Build an annotated synthetic Web-table corpus."""
    config = config or WebTableConfig()
    rng = derive_rng(config.seed, "webtables", config.corpus_name)
    names = [name for name, _, _ in WEB_COLUMN_POOL]
    kinds = {name: kind for name, kind, _ in WEB_COLUMN_POOL}
    weights = np.array([weight for _, _, weight in WEB_COLUMN_POOL])
    weights = weights / weights.sum()

    annotator = AnnotationPipeline(annotation_config) if annotate else None
    corpus = GitTablesCorpus(name=config.corpus_name)

    for index in range(config.n_tables):
        n_cols = _sample_dimension(rng, config.mean_cols, 2, 12)
        n_rows = _sample_dimension(rng, config.mean_rows, 2, 120)
        picks = rng.choice(len(names), size=n_cols, replace=False, p=weights)
        header = [names[i] for i in picks]
        columns = {}
        for name in header:
            override = WEB_VALUE_OVERRIDES.get(name)
            values = override(rng, n_rows) if override else generate_values(kinds[name], rng, n_rows)
            if rng.random() < config.column_noise_probability:
                other = names[int(rng.integers(0, len(names)))]
                noise_values = generate_values(kinds[other], rng, n_rows)
                mask = rng.random(n_rows) < config.noise_fraction
                values = [n if m else v for v, n, m in zip(values, noise_values, mask)]
            columns[name] = values
        table = Table.from_columns(
            columns,
            table_id=f"{config.corpus_name}-{index:05d}",
            metadata={"source": config.corpus_name},
        )
        if annotator is not None:
            annotations = annotator.annotate(table)
        else:
            annotations = TableAnnotations(table_id=table.table_id)
        corpus.add(
            AnnotatedTable(
                table=table,
                annotations=annotations,
                topic="web",
                repository=f"{config.corpus_name}/html-page-{index // 10}",
                source_url=f"https://webdatacommons.example/{config.corpus_name}/{index}",
                license_key="cc-by-4.0",
            )
        )
    return corpus


#: Reference corpus statistics reported in paper Table 1 for existing
#: corpora (used verbatim by the Table 1 experiment alongside measured
#: statistics for the corpora we actually build).
REFERENCE_TABLE1_ROWS: tuple[dict, ...] = (
    {"name": "WDC WebTables", "table_source": "HTML pages", "n_tables": 90_000_000, "avg_rows": 11, "avg_cols": 4},
    {"name": "Dresden Web Table Corpus", "table_source": "HTML pages", "n_tables": 59_000_000, "avg_rows": 17, "avg_cols": 6},
    {"name": "WikiTables", "table_source": "Wikipedia tables", "n_tables": 2_000_000, "avg_rows": 15, "avg_cols": 6},
    {"name": "Open Data Portal Watch", "table_source": "CSVs from Open Data portals", "n_tables": 107_000, "avg_rows": 365, "avg_cols": 14},
    {"name": "VizNet", "table_source": "WebTables, Plotly, i.a.", "n_tables": 31_000_000, "avg_rows": 17, "avg_cols": 3},
    {"name": "GitTables (paper)", "table_source": "CSVs from GitHub", "n_tables": 1_000_000, "avg_rows": 142, "avg_cols": 12},
)
