"""Synthetic T2Dv2-style gold standard (paper §4.3).

T2Dv2 is a hand-labelled subset of WDC WebTables whose columns carry gold
DBpedia types. The paper evaluates both annotation methods against it:
the semantic method agrees with the gold label for 54% of columns, the
syntactic method for 61%, and a manual review shows that many
disagreements are actually granularity mismatches where GitTables'
annotation is the more specific one (e.g. gold ``location`` for a column
of cities the semantic method calls ``city``).

The synthetic benchmark reproduces that structure: every column has a
true fine-grained type; the *gold* label equals the true type for most
columns but is deliberately coarsened to the parent type (or an
alternative plausible label) for a configurable share of columns, which
is what produces the paper's agreement levels and its "T2Dv2 may need a
review" observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rand import derive_rng
from ..dataframe.table import Table
from ..github.values import generate_values

__all__ = ["T2Dv2Column", "T2Dv2Benchmark", "build_t2dv2"]


@dataclass(frozen=True)
class T2Dv2Column:
    """One gold-annotated column of the benchmark."""

    table_id: str
    column_name: str
    values: tuple
    #: The gold DBpedia label as published by (the synthetic) T2Dv2.
    gold_type: str
    #: The fine-grained type actually realised by the column values;
    #: equals ``gold_type`` unless the gold label was coarsened.
    true_type: str

    @property
    def gold_is_coarsened(self) -> bool:
        return self.gold_type != self.true_type


@dataclass
class T2Dv2Benchmark:
    """A collection of gold-annotated Web-table columns."""

    columns: list[T2Dv2Column] = field(default_factory=list)
    tables: list[Table] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.columns)

    def coarsened_fraction(self) -> float:
        if not self.columns:
            return 0.0
        return sum(column.gold_is_coarsened for column in self.columns) / len(self.columns)


#: (canonical column name, alternative header spellings, value kind,
#: fine type, coarse/alternative gold type). Alternative spellings are
#: realistic Web-table headers that do not match any ontology label
#: exactly, which is what separates the syntactic and semantic methods'
#: agreement levels in §4.3.
_T2D_COLUMN_SPECS: tuple[tuple[str, tuple[str, ...], str, str, str], ...] = (
    ("City", ("City name", "Town/City"), "city", "city", "location"),
    ("Country", ("Country name", "Country of origin"), "country", "country", "place"),
    ("Name", ("Full name", "Name of person"), "person_name", "name", "name"),
    ("Title", ("Official title",), "title", "title", "title"),
    ("Artist", ("Performing artist", "Recording artist"), "artist", "artist", "person"),
    ("Year", ("Year released",), "year", "year", "date"),
    ("Date", ("Date of event",), "date", "date", "date"),
    ("Latin name", ("Scientific name",), "species", "latin name", "synonym"),
    ("Population", ("Population (2010)", "Inhabitants"), "population", "population", "population"),
    ("Area", ("Area (km2)", "Surface area"), "area", "area", "size"),
    ("Team", ("Team name", "Squad"), "team", "team", "club"),
    ("Author", ("Written by",), "person_name", "author", "writer"),
    ("Genre", ("Musical genre",), "genre", "genre", "category"),
    ("Language", ("Original language",), "language", "language", "language"),
    ("Status", ("Current status",), "status", "status", "state"),
    ("Address", ("Street address", "Location address"), "address", "address", "location"),
    ("Email", ("E-mail", "Contact email"), "email", "email", "email"),
    ("Price", ("List price", "Price (USD)"), "price", "price", "cost"),
    ("Elevation", ("Elevation (m)",), "distance", "elevation", "altitude"),
    ("Capital", ("Capital city",), "city", "capital", "city"),
    ("Description", ("Short description",), "description", "description", "abstract"),
    ("Director", ("Directed by",), "person_name", "director", "person"),
    ("Album", ("Album title",), "title", "album", "album"),
    ("Rank", ("Overall rank",), "rank", "rank", "number"),
    ("Weight", ("Weight (kg)",), "weight", "weight", "mass"),
)


def build_t2dv2(
    n_tables: int = 60,
    rows_per_table: int = 18,
    columns_per_table: int = 4,
    coarsen_probability: float = 0.35,
    header_variation_probability: float = 0.4,
    seed: int = 11,
) -> T2Dv2Benchmark:
    """Build the synthetic T2Dv2 benchmark.

    ``coarsen_probability`` controls how often the published gold label is
    the coarser/alternative label rather than the fine-grained one;
    ``header_variation_probability`` controls how often a column uses a
    messy real-world header spelling instead of the canonical one. The
    defaults reproduce agreement levels in the half-to-three-quarters
    range the paper reports for its annotators.
    """
    rng = derive_rng(seed, "t2dv2")
    benchmark = T2Dv2Benchmark()
    for index in range(n_tables):
        picks = rng.choice(len(_T2D_COLUMN_SPECS), size=min(columns_per_table, len(_T2D_COLUMN_SPECS)), replace=False)
        header: list[str] = []
        columns: dict[str, list] = {}
        table_id = f"t2dv2-{index:04d}"
        gold_columns: list[T2Dv2Column] = []
        for pick in picks:
            canonical, alternatives, kind, fine_type, coarse_type = _T2D_COLUMN_SPECS[pick]
            column_name = canonical
            if alternatives and rng.random() < header_variation_probability:
                column_name = alternatives[int(rng.integers(0, len(alternatives)))]
            values = generate_values(kind, rng, rows_per_table)
            header.append(column_name)
            columns[column_name] = values
            coarsened = rng.random() < coarsen_probability and coarse_type != fine_type
            gold_columns.append(
                T2Dv2Column(
                    table_id=table_id,
                    column_name=column_name,
                    values=tuple(values),
                    gold_type=coarse_type if coarsened else fine_type,
                    true_type=fine_type,
                )
            )
        table = Table.from_columns(columns, table_id=table_id, metadata={"source": "t2dv2"})
        benchmark.tables.append(table)
        benchmark.columns.extend(gold_columns)
    return benchmark
