"""Benchmark E6 — Table 6: content biases (subregions / subpopulations)."""

from __future__ import annotations

from repro.experiments.content_bias import run_table6
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_table6(benchmark, bench_context):
    result = benchmark.pedantic(run_table6, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    country = result.row_by(semantic_type="country")
    gender = result.row_by(semantic_type="gender")
    # Paper shape: geographic/demographic columns are a small share of the
    # corpus and the country distribution is dominated by Western /
    # English-speaking countries.
    assert country["percentage_columns"] < 10.0
    assert "United States" in country["frequent_values"] or "USA" in country["frequent_values"]
    assert any(token in gender["frequent_values"] for token in ("Male", "Female", "F", "M"))
