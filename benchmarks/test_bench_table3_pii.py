"""Benchmark E3 — Table 3: PII types, column percentages, Faker classes."""

from __future__ import annotations

from repro.experiments.annotation_stats import run_table3
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_table3(benchmark, bench_context):
    result = benchmark.pedantic(run_table3, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    rows = {row["semantic_type"]: row for row in result.rows}
    # The Faker class mapping is fixed by the paper.
    assert rows["email"]["faker_class"] == "faker.email"
    assert rows["birth date"]["faker_class"] == "faker.date"
    # PII columns are a small minority of the corpus.
    assert sum(row["percentage_columns"] for row in result.rows) < 10.0
