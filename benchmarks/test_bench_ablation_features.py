"""Ablation A3: feature families of the domain classifier (§4.2).

Sherlock-style featurisation combines character distributions, global
statistics and embedding aggregates. This ablation retrains the
GitTables-vs-VizNet domain classifier with individual feature families
switched on, showing how much each family contributes to the corpus
separability result.
"""

from __future__ import annotations

from repro.applications.domain_classifier import detect_data_shift
from repro.ml.features import ColumnFeaturizer

SCALE = "default"

FAMILIES = {
    "chars_only": {"include_char_features": True, "include_statistics": False, "include_embeddings": False},
    "stats_only": {"include_char_features": False, "include_statistics": True, "include_embeddings": False},
    "chars+stats": {"include_char_features": True, "include_statistics": True, "include_embeddings": False},
    "all": {"include_char_features": True, "include_statistics": True, "include_embeddings": True},
}


def test_bench_ablation_feature_families(benchmark, bench_context):
    gittables = bench_context.gittables
    viznet = bench_context.viznet

    def sweep() -> dict[str, float]:
        accuracies: dict[str, float] = {}
        for name, flags in FAMILIES.items():
            result = detect_data_shift(
                gittables,
                viznet,
                n_columns_per_corpus=120,
                n_splits=4,
                n_estimators=8,
                featurizer=ColumnFeaturizer(**flags),
                seed=3,
            )
            accuracies[name] = result.mean_accuracy
        return accuracies

    accuracies = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nfeature family -> domain classifier accuracy")
    for name, accuracy in accuracies.items():
        print(f"  {name:>11} -> {accuracy:.3f}")
    # Every family separates the corpora above chance; the full feature
    # set should not be worse than the weakest single family.
    assert all(accuracy > 0.55 for accuracy in accuracies.values())
    assert accuracies["all"] >= min(accuracies.values())
