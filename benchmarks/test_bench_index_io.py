"""Benchmark: cold-start latency with and without persisted index artifacts.

Measures the mmap-backed artifact layer (``repro.storage.artifacts``):

* **cold, no artifacts** — ``GitTables.load()`` followed by the first
  ``search()``, which must embed every schema of the corpus before the
  query can be answered (the pre-artifact behaviour),
* **publish** — the first artifact-aware session's build-and-publish
  pass (one-time cost),
* **cold, with artifacts** — a fresh ``GitTables.load()`` plus first
  ``search()`` resolving the schema index from the fingerprint-guarded
  mmap'd artifact: zero corpus-wide embedding calls.

The headline number is ``speedup`` (cold-no-artifacts / cold-with-
artifacts); the results of both paths are asserted exactly equal.

``scripts/bench.py --suite index_io`` reuses these helpers to write the
``BENCH_index_io.json`` perf baseline. The pytest wrapper is marked
``slow`` and therefore excluded from the tier-1 run (see
``[tool.pytest.ini_options]`` in pyproject.toml).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.api import GitTables
from repro.config import PipelineConfig
from repro.core.pipeline import build_corpus
from repro.github.content import GeneratorConfig

N_TABLES = 300
SHARD_SIZE = 32
#: Required cold-start improvement from mmap'd artifacts.
MIN_SPEEDUP = 5.0

_QUERY = "status and sales amount per product"


def run_index_io_benchmark(
    n_tables: int = N_TABLES, shard_size: int = SHARD_SIZE, seed: int = 13, k: int = 10
) -> dict:
    """Time cold load+first-query with and without persisted artifacts."""
    config = PipelineConfig(target_tables=n_tables, seed=seed)
    generator = GeneratorConfig(seed=seed).scaled_to_files(n_tables * 8)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        build_corpus(
            config, generator_config=generator, store_dir=store_dir, shard_size=shard_size
        )

        # Cold start, artifact-free: load + first query embeds the corpus.
        started = perf_counter()
        plain = GitTables.load(store_dir, use_artifacts=False)
        plain_results = plain.search(_QUERY, k=k)
        cold_plain_seconds = perf_counter() - started

        # One-time publish pass (build once, persist next to the shards).
        started = perf_counter()
        GitTables.load(store_dir).warm()
        publish_seconds = perf_counter() - started

        # Cold start, artifact-backed: load + first query mmaps the index.
        started = perf_counter()
        warm = GitTables.load(store_dir)
        warm_results = warm.search(_QUERY, k=k)
        cold_artifact_seconds = perf_counter() - started

        n_indexed = len(warm.search_engine)

    return {
        "n_tables": n_tables,
        "n_indexed_schemas": n_indexed,
        "shard_size": shard_size,
        "cold_no_artifacts_seconds": cold_plain_seconds,
        "publish_seconds": publish_seconds,
        "cold_with_artifacts_seconds": cold_artifact_seconds,
        "speedup": (
            cold_plain_seconds / cold_artifact_seconds if cold_artifact_seconds else 0.0
        ),
        "results_equal": warm_results == plain_results,
    }


@pytest.mark.slow
def test_bench_index_io(benchmark):
    result = benchmark.pedantic(
        run_index_io_benchmark, kwargs={"n_tables": 150}, rounds=1, iterations=1
    )
    print(
        f"\ncold load+search over {result['n_indexed_schemas']} schemas: "
        f"{result['cold_no_artifacts_seconds']:.3f}s embedding everything vs "
        f"{result['cold_with_artifacts_seconds']:.3f}s from mmap'd artifacts "
        f"({result['speedup']:.1f}x; one-time publish "
        f"{result['publish_seconds']:.3f}s)"
    )
    assert result["results_equal"], "artifact-backed results must be bit-identical"
    assert result["speedup"] >= MIN_SPEEDUP
