"""Benchmark E13 — Figure 6a: table-to-KG matching on the curated benchmark."""

from __future__ import annotations

from repro.experiments.kg_matching import run_fig6a
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_fig6a(benchmark, bench_context):
    result = benchmark.pedantic(run_fig6a, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    matcher_rows = [row for row in result.rows if row["system"] != "(benchmark size)"]
    assert matcher_rows
    # Paper shape: precision and recall stay low for KG value-linking
    # systems on GitTables-style tables — recall collapses because most
    # database columns cannot be linked to KG entities.
    assert all(row["recall"] < 0.5 for row in matcher_rows)
    assert all(0.0 <= row["precision"] <= 1.0 for row in matcher_rows)
    value_linking = [row for row in matcher_rows if row["system"] == "value-linking"]
    assert all(row["f1"] < 0.5 for row in value_linking)
