"""Benchmark E2 — Table 2: annotated-corpus characteristics."""

from __future__ import annotations

from repro.experiments.corpus_stats import run_table2
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_table2(benchmark, bench_context):
    result = benchmark.pedantic(run_table2, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    git = result.row_by(dataset="GitTables (reproduced)")
    t2d = result.row_by(dataset="T2Dv2 (synthetic)")
    # Paper shape: GitTables is annotated with many more types and much
    # larger tables than existing annotated benchmarks.
    assert git["n_types"] > t2d["n_types"]
    assert git["avg_rows"] > t2d["avg_rows"]
