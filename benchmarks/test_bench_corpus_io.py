"""Benchmark: sharded corpus storage I/O (build, save, reload, lazy get).

Measures the storage layer introduced with the pluggable-store refactor:

* **build** — streaming a corpus build straight into a sharded on-disk
  store (commit-per-batch, the resumable path),
* **save** — atomically snapshotting an in-memory corpus to shards,
* **reload** — a full streaming iteration over the lazily loaded store
  (at most ``cache_shards`` shards resident at any point),
* **lazy get** — single-table reads, which touch exactly one shard.

Peak RSS is recorded as a note (``ru_maxrss`` is a high-water mark for
the whole process, so it is context — not an isolated measurement).

``scripts/bench.py --suite corpus_io`` reuses these helpers to write the
``BENCH_corpus_io.json`` perf baseline. The pytest wrapper is marked
``slow`` and therefore excluded from the tier-1 run (see
``[tool.pytest.ini_options]`` in pyproject.toml).
"""

from __future__ import annotations

import resource
import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.config import PipelineConfig
from repro.core.corpus import GitTablesCorpus
from repro.core.pipeline import build_corpus
from repro.github.content import GeneratorConfig

N_TABLES = 300
SHARD_SIZE = 32


def _peak_rss_kb() -> int:
    """Process high-water RSS in KiB (Linux ru_maxrss unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_corpus_io_benchmark(
    n_tables: int = N_TABLES, shard_size: int = SHARD_SIZE, seed: int = 13
) -> dict:
    """Time build→store, save, streaming reload and lazy gets."""
    config = PipelineConfig(target_tables=n_tables, seed=seed)
    generator = GeneratorConfig(seed=seed).scaled_to_files(n_tables * 8)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        started = perf_counter()
        result = build_corpus(
            config, generator_config=generator, store_dir=store_dir, shard_size=shard_size
        )
        build_seconds = perf_counter() - started
        n_built = len(result.corpus)

        # Atomic snapshot of an equivalent in-memory corpus.
        memory = GitTablesCorpus(name="bench")
        for annotated in result.corpus:
            memory.add(annotated)
        save_dir = Path(tmp) / "saved"
        started = perf_counter()
        memory.save(save_dir, shard_size=shard_size)
        save_seconds = perf_counter() - started

        # Full streaming reload: lazy store, iterate everything.
        started = perf_counter()
        reloaded = GitTablesCorpus.load(store_dir)
        n_reloaded = sum(1 for _ in reloaded)
        reload_seconds = perf_counter() - started

        # Lazy single-table reads on a cold store.
        cold = GitTablesCorpus.load(store_dir)
        table_ids = list(cold.table_ids())[:: max(1, len(reloaded) // 50)]
        started = perf_counter()
        for table_id in table_ids:
            assert cold.get(table_id) is not None
        get_seconds = perf_counter() - started

        n_shards = len(reloaded.store.shard_files())

    return {
        "n_tables": n_built,
        "n_reloaded": n_reloaded,
        "shard_size": shard_size,
        "n_shards": n_shards,
        "build_seconds": build_seconds,
        "build_tables_per_second": n_built / build_seconds if build_seconds else 0.0,
        "save_seconds": save_seconds,
        "reload_seconds": reload_seconds,
        "reload_tables_per_second": n_reloaded / reload_seconds if reload_seconds else 0.0,
        "lazy_gets": len(table_ids),
        "lazy_get_seconds": get_seconds,
        "peak_rss_kb_note": _peak_rss_kb(),
    }


@pytest.mark.slow
def test_bench_corpus_io(benchmark):
    result = benchmark.pedantic(
        run_corpus_io_benchmark, kwargs={"n_tables": 120}, rounds=1, iterations=1
    )
    print(
        f"\nbuilt {result['n_tables']} tables into {result['n_shards']} shards in "
        f"{result['build_seconds']:.2f}s ({result['build_tables_per_second']:.0f} t/s); "
        f"reload {result['reload_seconds']:.3f}s "
        f"({result['reload_tables_per_second']:.0f} t/s); "
        f"{result['lazy_gets']} lazy gets in {result['lazy_get_seconds']:.3f}s; "
        f"peak RSS {result['peak_rss_kb_note'] / 1024:.0f} MiB (process high-water)"
    )
    assert result["n_reloaded"] == result["n_tables"]
