"""Benchmark E5 — Table 5: annotation statistics by method and ontology."""

from __future__ import annotations

from repro.experiments.annotation_stats import run_table5
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_table5(benchmark, bench_context):
    result = benchmark.pedantic(run_table5, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    for ontology in ("dbpedia", "schema_org"):
        semantic = result.row_by(method="semantic", ontology=ontology)
        syntactic = result.row_by(method="syntactic", ontology=ontology)
        # Paper shape: the semantic method annotates more tables, more
        # columns and more distinct types than the syntactic method.
        assert semantic["annotated_tables"] >= syntactic["annotated_tables"]
        assert semantic["annotated_columns"] > syntactic["annotated_columns"]
        assert semantic["unique_types"] >= syntactic["unique_types"]
