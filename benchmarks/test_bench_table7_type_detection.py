"""Benchmark E7 — Table 7: semantic type detection across corpora."""

from __future__ import annotations

from repro.experiments.registry import format_result
from repro.experiments.type_detection import run_table7

SCALE = "default"


def test_bench_table7(benchmark, bench_context):
    result = benchmark.pedantic(run_table7, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    git_git = result.row_by(train_corpus="GitTables", eval_corpus="GitTables")
    viz_viz = result.row_by(train_corpus="VizNet", eval_corpus="VizNet")
    viz_git = result.row_by(train_corpus="VizNet", eval_corpus="GitTables")
    # Paper shape (0.86 / 0.77 / 0.66): both within-corpus models score
    # high, and the VizNet-trained model drops sharply on GitTables.
    assert git_git["f1_macro"] > 0.7
    assert viz_viz["f1_macro"] > 0.6
    assert viz_git["f1_macro"] < viz_viz["f1_macro"]
    assert viz_git["f1_macro"] < git_git["f1_macro"]
