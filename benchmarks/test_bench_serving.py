"""Benchmark: micro-batched multi-worker serving vs an unbatched loop.

Measures the concurrent query serving layer (``repro.serving``) over a
store built on disk:

* **baseline** — a 1-worker service with batching disabled
  (``max_batch=1``, ``max_wait_ms=0``), driven as a closed loop: each
  request is submitted and awaited before the next. This is the
  one-request-per-IPC-round-trip lower bound.
* **served** — a ``WORKERS``-worker service with micro-batching on,
  driven as an open burst: every request is submitted up front and the
  coalescer packs them into windows that fan out across the pool, each
  worker answering whole batches against its own mmap'd artifacts.

Both arms serve the same uniform-``k`` query workload (one
compatibility key, so every window rides as a single kernel batch),
get an untimed warm-up burst (worker import/page-fault and encoder
cache effects hit once, not inside the measurement), and are timed
over ``ROUNDS`` rounds with the best round kept — the machines this
runs on are small and share their CPUs, so single-shot wall-clock is
noisy.

The headline number is ``speedup`` (served QPS / baseline QPS); every
response of both arms, in every round, is asserted byte-identical to
the single-shot session call with the same arguments. A trailing
open-loop trickle of paced requests contributes per-request latency
samples on top of the burst rounds; ``latency_ms`` summarises both.

``scripts/bench.py --suite serving`` reuses these helpers to write the
``BENCH_serving.json`` perf baseline. The pytest wrapper is marked
``slow`` and therefore excluded from the tier-1 run (see
``[tool.pytest.ini_options]`` in pyproject.toml).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from time import perf_counter

import pytest

from repro.api import GitTables
from repro.config import PipelineConfig
from repro.core.pipeline import build_corpus
from repro.github.content import GeneratorConfig

N_TABLES = 300
SHARD_SIZE = 32
WORKERS = 4
N_REQUESTS = 200
N_PACED = 60
ROUNDS = 4
MAX_BATCH = 128
MAX_WAIT_MS = 10.0
_K = 10
#: Required QPS improvement of the micro-batched pool over the
#: 1-worker unbatched loop.
MIN_SPEEDUP = 3.0

_QUERY_TOPICS = (
    "status and sales amount per product",
    "employee name email and salary",
    "order id price quantity",
    "country population statistics",
    "temperature sensor reading log",
    "customer address and phone",
    "monthly revenue per region",
    "inventory stock level by warehouse",
)


def _workload(n_requests: int) -> list[str]:
    """A deterministic distinct-query search workload."""
    return [
        f"{_QUERY_TOPICS[index % len(_QUERY_TOPICS)]} variant {index}"
        for index in range(n_requests)
    ]


def run_serving_benchmark(
    n_tables: int = N_TABLES,
    workers: int = WORKERS,
    n_requests: int = N_REQUESTS,
    rounds: int = ROUNDS,
    shard_size: int = SHARD_SIZE,
    seed: int = 13,
) -> dict:
    """Time the micro-batched pool against a 1-worker unbatched loop."""
    config = PipelineConfig(target_tables=n_tables, seed=seed)
    generator = GeneratorConfig(seed=seed).scaled_to_files(n_tables * 8)
    queries = _workload(n_requests)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        build_corpus(
            config, generator_config=generator, store_dir=store_dir, shard_size=shard_size
        )
        session = GitTables.load(store_dir)
        # Single-shot ground truth (also warms + publishes the artifacts
        # the workers will mmap, outside every timed section).
        expected = [session.search(query, k=_K) for query in queries]

        # Arm 1: one worker, batching off, closed request loop.
        baseline_times = []
        with session.serve(workers=1, max_batch=1, max_wait_ms=0.0) as baseline:
            # Full untimed warm-up pass: worker wake-up, encoder cache
            # and mmap page faults settle before the measured rounds.
            for query in queries:
                baseline.search(query, k=_K)
            for _ in range(rounds):
                started = perf_counter()
                results = [baseline.search(query, k=_K) for query in queries]
                baseline_times.append(perf_counter() - started)
                if results != expected:
                    raise AssertionError("baseline responses diverged from single-shot")

        # Arm 2: worker pool with micro-batching, open burst.
        served_times = []
        with session.serve(
            workers=workers, max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS
        ) as served:
            warmup = [served.submit_search(query, k=_K) for query in queries]
            for future in warmup:
                future.result(timeout=600)
            for _ in range(rounds):
                started = perf_counter()
                futures = [served.submit_search(query, k=_K) for query in queries]
                results = [future.result(timeout=600) for future in futures]
                served_times.append(perf_counter() - started)
                if results != expected:
                    raise AssertionError("served responses diverged from single-shot")

            # Open-loop trickle: adds paced per-request latency samples.
            paced = []
            for query in _workload(N_PACED):
                paced.append(served.submit_search(f"paced {query}", k=_K))
                time.sleep(0.002)
            for future in paced:
                future.result(timeout=600)
            snapshot = served.metrics()

    search_stats = snapshot["endpoints"]["search"]
    baseline_seconds = min(baseline_times)
    served_seconds = min(served_times)
    baseline_qps = n_requests / baseline_seconds if baseline_seconds else 0.0
    served_qps = n_requests / served_seconds if served_seconds else 0.0
    return {
        "n_tables": n_tables,
        "n_requests": n_requests,
        "n_paced_requests": N_PACED,
        "rounds": rounds,
        "workers": workers,
        "max_batch": MAX_BATCH,
        "max_wait_ms": MAX_WAIT_MS,
        "baseline_seconds": baseline_seconds,
        "baseline_round_seconds": [round(value, 6) for value in baseline_times],
        "baseline_qps": baseline_qps,
        "served_seconds": served_seconds,
        "served_round_seconds": [round(value, 6) for value in served_times],
        "served_qps": served_qps,
        "speedup": served_qps / baseline_qps if baseline_qps else 0.0,
        "results_equal": True,  # every round asserted above
        "batch_size_histogram": search_stats["batch_size_histogram"],
        "mean_batch_size": search_stats["mean_batch_size"],
        "latency_ms": search_stats["latency_ms"],
        "worker_crashes": snapshot["workers"]["crashes"],
    }


@pytest.mark.slow
def test_bench_serving(benchmark):
    result = benchmark.pedantic(run_serving_benchmark, rounds=1, iterations=1)
    latency = result["latency_ms"]
    print(
        f"\n{result['n_requests']} searches: 1-worker unbatched "
        f"{result['baseline_qps']:.0f} QPS vs {result['workers']}-worker "
        f"micro-batched {result['served_qps']:.0f} QPS "
        f"({result['speedup']:.1f}x; mean batch {result['mean_batch_size']:.1f}, "
        f"p50 {latency['p50']:.1f}ms p99 {latency['p99']:.1f}ms)"
    )
    assert result["results_equal"], "served responses must be bit-identical"
    assert result["worker_crashes"] == 0
    assert result["speedup"] >= MIN_SPEEDUP
