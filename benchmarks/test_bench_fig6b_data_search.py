"""Benchmark E14 — Figure 6b: natural-language data search."""

from __future__ import annotations

from repro.experiments.data_search import run_fig6b
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_fig6b(benchmark, bench_context):
    result = benchmark.pedantic(run_fig6b, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    top_rows = [row for row in result.rows if row["rank"] == 1]
    assert top_rows
    # The paper's example query should retrieve an order-like table with
    # status / price / product attributes.
    example = next(
        row for row in top_rows if row["query"] == "status and sales amount per product"
    )
    schema_text = example["schema"].lower()
    assert any(token in schema_text for token in ("order", "product", "price", "status", "amount"))
    assert all(-1.0 <= row["score"] <= 1.0 for row in result.rows)
