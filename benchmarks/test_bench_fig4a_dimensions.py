"""Benchmark E9 — Figure 4a: cumulative table counts across dimensions."""

from __future__ import annotations

from repro.experiments.corpus_stats import run_fig4a
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_fig4a(benchmark, bench_context):
    result = benchmark.pedantic(run_fig4a, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    for axis in ("rows", "columns"):
        counts = [row["cumulative_tables"] for row in result.rows if row["axis"] == axis]
        # Cumulative counts must be monotone and end at the corpus size.
        assert counts == sorted(counts)
        assert counts[-1] == len(bench_context.gittables)
    # Long tail: some tables are much larger than the median.
    row_dims = [row["dimension"] for row in result.rows if row["axis"] == "rows"]
    assert max(row_dims) > 500
