"""Benchmark E4 — Table 4: atomic data type distribution."""

from __future__ import annotations

from repro.experiments.corpus_stats import run_table4
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_table4(benchmark, bench_context):
    result = benchmark.pedantic(run_table4, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    numeric = result.row_by(atomic_type="numeric")
    other = result.row_by(atomic_type="other")
    # Paper shape: GitTables is majority-numeric (57.9%), more numeric than
    # Web tables, and the "other" bucket is marginal.
    assert numeric["gittables_pct"] > 45.0
    assert numeric["gittables_pct"] > numeric["webtables_pct"]
    assert other["gittables_pct"] < 5.0
