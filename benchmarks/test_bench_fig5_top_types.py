"""Benchmark E12 — Figure 5: top-25 annotated semantic types per ontology."""

from __future__ import annotations

from repro.experiments.annotation_stats import run_fig5
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_fig5(benchmark, bench_context):
    result = benchmark.pedantic(run_fig5, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    for ontology in ("dbpedia", "schema_org"):
        rows = [row for row in result.rows if row["ontology"] == ontology]
        assert 0 < len(rows) <= 25
        counts = [row["column_count"] for row in rows]
        assert counts == sorted(counts, reverse=True)
        top_types = {row["type"] for row in rows[:15]}
        # Paper shape: database-flavoured types dominate GitTables.
        assert top_types & {"id", "value", "status", "date", "code", "year", "name"}
