"""Shared fixtures for the benchmark harness.

Benchmarks run the experiment drivers at the ``default`` scale (≈400
tables). The corpora are built once per session through the shared
experiment context; the benchmarks time the experiment computation
itself, not corpus construction (which has its own benchmark).
"""

from __future__ import annotations

import pytest

from repro.experiments.context import get_context

#: Scale used by every benchmark; switch to "large" for slower, more
#: stable runs.
BENCH_SCALE = "default"


@pytest.fixture(scope="session")
def bench_context():
    """The shared default-scale experiment context (corpora pre-built)."""
    context = get_context(scale=BENCH_SCALE)
    # Force corpus construction outside of the timed sections.
    _ = context.gittables
    _ = context.viznet
    _ = context.t2dv2
    return context


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
