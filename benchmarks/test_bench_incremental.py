"""Benchmark: incremental epoch growth vs a from-scratch rebuild.

Builds a 5k-table sharded store through the real pipeline (with warmed,
published index artifacts), then grows it by 10% two ways:

* **extend** — :meth:`GitTables.extend` on the existing directory: the
  pipeline resumes past the sealed epoch (only the new tables are
  parsed, annotated and appended as new shards), the search/completion
  engines delta-refresh their artifacts (only the tail schemas are
  embedded), and the columnar projection extends its arrays;
* **rebuild** — a from-scratch build of the grown configuration into a
  fresh directory, plus a full engine warm (corpus-wide embedding).

The acceptance gate is a ≥5x speedup for the extend arm with *exactly*
equal results — same search rankings, same completions, same statistics,
and equal store content fingerprints (the extended directory holds the
same table bytes as the rebuilt one; only the manifest epoch trailer
differs).

``scripts/bench.py --suite incremental`` reuses these helpers to write
the ``BENCH_incremental.json`` perf baseline. The pytest wrapper is
marked ``slow`` and therefore excluded from the tier-1 run (see
``[tool.pytest.ini_options]`` in pyproject.toml).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.api import GitTables
from repro.config import PipelineConfig
from repro.github.content import GeneratorConfig
from repro.storage.sharded import ShardedJsonlStore, read_store_epoch

N_TABLES = 5000
GROWTH = 0.10
SHARD_SIZE = 256
MIN_SPEEDUP = 5.0

#: Queries / prefixes exercised for the exact-equality checks.
_QUERIES = (
    "status and sales amount per product",
    "sensor readings by day",
    "population by country",
)
_PREFIXES = (("id", "name", "date"), ("country", "city", "population"))


def _answers(session: GitTables) -> tuple:
    """The full checked surface of one session, as comparable values."""
    searches = tuple(tuple(session.search(query, k=10)) for query in _QUERIES)
    completions = tuple(tuple(session.complete_schema(prefix, k=10)) for prefix in _PREFIXES)
    return searches, completions, session.stats(), session.annotation_stats()


def run_incremental_benchmark(
    n_tables: int = N_TABLES, growth: float = GROWTH, shard_size: int = SHARD_SIZE
) -> dict:
    """Time in-place growth vs a from-scratch rebuild of the grown corpus."""
    grown_tables = int(n_tables * (1.0 + growth))
    base = PipelineConfig(target_tables=n_tables, seed=13)
    # The generator is sized for the *grown* corpus up front: an
    # extension must replay the same source stream, so both targets draw
    # their tables from one identically-seeded instance.
    generator = GeneratorConfig(seed=13).scaled_to_files(grown_tables * 8)

    with tempfile.TemporaryDirectory() as tmp:
        base_dir = Path(tmp) / "base"
        rebuild_dir = Path(tmp) / "rebuild"

        # Setup (amortized across the store's lifetime): the base build
        # plus its engine warm/publish, so the extend arm starts from a
        # fully artifact-backed directory — the steady state a grown
        # corpus lives in.
        started = perf_counter()
        session = GitTables.build(base, generator_config=generator, store_dir=base_dir,
                                  shard_size=shard_size)
        _ = session.search_engine
        _ = session.completer
        base_seconds = perf_counter() - started

        # Extend arm: reopen and grow in place. Covers the epoch build
        # (only new tables do pipeline work), the engines' delta
        # refresh (only tail schemas embedded) and the deferred prune.
        reopened = GitTables.load(base_dir)
        started = perf_counter()
        reopened.extend(target_tables=grown_tables, shard_size=shard_size)
        extend_seconds = perf_counter() - started

        # Rebuild arm: the same grown corpus from scratch — full
        # pipeline run plus a corpus-wide engine warm.
        grown = base.replace(target_tables=grown_tables)
        started = perf_counter()
        rebuilt = GitTables.build(grown, generator_config=generator, store_dir=rebuild_dir,
                                  shard_size=shard_size)
        _ = rebuilt.search_engine
        _ = rebuilt.completer
        rebuild_seconds = perf_counter() - started

        extended_answers = _answers(reopened)
        rebuilt_answers = _answers(rebuilt)
        fingerprints_equal = (
            ShardedJsonlStore(base_dir).content_fingerprint()
            == ShardedJsonlStore(rebuild_dir).content_fingerprint()
        )
        epoch, sealed = read_store_epoch(base_dir)

    new_tables = grown_tables - n_tables
    return {
        "n_tables": n_tables,
        "n_grown_tables": grown_tables,
        "n_new_tables": new_tables,
        "shard_size": shard_size,
        "epoch": epoch,
        "epoch_sealed": sealed,
        "base_build_seconds": base_seconds,
        "extend_seconds": extend_seconds,
        "rebuild_seconds": rebuild_seconds,
        "speedup": rebuild_seconds / extend_seconds,
        "extend_new_tables_per_second": new_tables / extend_seconds,
        "rebuild_tables_per_second": grown_tables / rebuild_seconds,
        "results_equal": extended_answers == rebuilt_answers,
        "fingerprints_equal": fingerprints_equal,
    }


@pytest.mark.slow
def test_incremental_growth_speedup():
    result = run_incremental_benchmark()
    print(
        f"\ngrowth {result['n_tables']} -> {result['n_grown_tables']} tables "
        f"(epoch {result['epoch']}): "
        f"extend {result['extend_seconds']:.1f}s | "
        f"rebuild {result['rebuild_seconds']:.1f}s | "
        f"speedup {result['speedup']:.1f}x | "
        f"base build {result['base_build_seconds']:.1f}s"
    )
    assert result["epoch"] == 2 and result["epoch_sealed"], "extend did not seal a new epoch"
    assert result["results_equal"], "extended session differs from the from-scratch rebuild"
    assert result["fingerprints_equal"], "extended store content differs from the rebuild"
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"extend speedup {result['speedup']:.1f}x below the {MIN_SPEEDUP}x gate"
    )
