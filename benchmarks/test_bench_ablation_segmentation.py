"""Ablation A2: query segmentation granularity vs retrievable files.

The GitHub Search API only exposes the first 1000 results of a query
(§3.2); the pipeline works around it by segmenting topic queries on the
``size:`` qualifier. This ablation compares (a) no segmentation, (b) the
pipeline's adaptive segmentation and (c) very fine segmentation, reporting
retrieved-file counts and API request counts.
"""

from __future__ import annotations

from repro.config import ExtractionConfig
from repro.core.extraction import CSVExtractor, build_topic_query, segment_query
from repro.github.client import GitHubClient
from repro.github.content import GeneratorConfig
from repro.github.instance import build_instance
from repro.github.search import SearchAPI

SCALE = "default"


def test_bench_ablation_query_segmentation(benchmark):
    # A dedicated instance with a small result window makes the effect of
    # segmentation visible without generating a huge corpus.
    instance = build_instance(GeneratorConfig(n_repositories=300, mean_rows=25, seed=17))
    result_window = 150

    def run_strategies() -> dict[str, tuple[int, int]]:
        outcomes: dict[str, tuple[int, int]] = {}
        for strategy, segment_bytes in (("none", None), ("adaptive", 4096), ("fine", 512)):
            client = GitHubClient(instance, search_api=SearchAPI(instance, result_window=result_window))
            extractor = CSVExtractor(
                client,
                ExtractionConfig(
                    topic_count=1,
                    result_window=result_window,
                    size_segment_bytes=segment_bytes or 4096,
                ),
            )
            query = build_topic_query("id")
            total = client.total_count(query)
            if strategy == "none":
                queries = [query]
            else:
                queries = segment_query(
                    query,
                    total,
                    result_window=result_window,
                    segment_bytes=segment_bytes,
                    max_file_size=extractor.config.max_file_size,
                )
            urls: set[str] = set()
            for segmented in queries:
                for item in client.search_all_pages(segmented):
                    urls.add(item.url)
            outcomes[strategy] = (len(urls), client.request_count)
        return outcomes

    outcomes = benchmark.pedantic(run_strategies, rounds=1, iterations=1)
    print("\nstrategy -> (files retrieved, api requests)")
    for strategy, (files, requests) in outcomes.items():
        print(f"  {strategy:>8} -> ({files}, {requests})")

    files_none, requests_none = outcomes["none"]
    files_adaptive, requests_adaptive = outcomes["adaptive"]
    files_fine, requests_fine = outcomes["fine"]
    # Segmentation retrieves at least as many files as the unsegmented
    # query (which is capped by the result window), at the cost of more
    # API requests; finer segmentation costs more requests again.
    assert files_adaptive >= files_none
    assert files_fine >= files_none
    assert requests_adaptive >= requests_none
    assert requests_fine >= requests_adaptive
