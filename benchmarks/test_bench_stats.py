"""Benchmark: corpus statistics off the columnar projection vs a scan.

Builds a 5k-table sharded corpus (deterministic synthetic tables with
annotations and PII metadata — no pipeline, no RNG), then times the full
statistics surface twice:

* **scan** — cold ``GitTablesCorpus.load()`` followed by the streaming
  references (``CorpusStatistics.from_scan``,
  ``AnnotationStatistics.from_scan``, ``CurationReport.from_scan``,
  ``dimension_cdf`` on both axes, ``top_types``), which parse every
  table's JSON out of the shards;
* **columnar** — cold ``GitTables.load()`` followed by the same surface
  through the materialized projection (``stats()``,
  ``annotation_stats()``, ``CurationReport.from_corpus`` with the
  projection attached, ``dimension_cdf`` on the dimension arrays), which
  reads only the mmap'd ``stats_*`` arrays.

The acceptance gate is a ≥5x speedup (target ≥10x) with *exactly* equal
results — same Counter insertion order, same float bit patterns.

``scripts/bench.py --suite stats`` reuses these helpers to write the
``BENCH_stats.json`` perf baseline. The pytest wrapper is marked
``slow`` and therefore excluded from the tier-1 run (see
``[tool.pytest.ini_options]`` in pyproject.toml).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.api import GitTables
from repro.core.annotation import AnnotationMethod, ColumnAnnotation, TableAnnotations
from repro.core.corpus import AnnotatedTable, GitTablesCorpus
from repro.core.curation import CurationReport
from repro.core.stats import AnnotationStatistics, CorpusStatistics, dimension_cdf, top_types
from repro.dataframe.table import Table
from repro.storage.columnar import ColumnarProjection, publish_projection
from repro.storage.artifacts import IndexArtifactStore, corpus_content_fingerprint

N_TABLES = 5000
SHARD_SIZE = 256
MIN_SPEEDUP = 5.0

_TOPICS = ("order", "organism", "event", "place", "report")
_LICENSES = ("mit", "apache-2.0", "gpl-3.0", None)
_TYPE_LABELS = ("id", "status", "name", "country", "price", "date", "city", "code")
_PII_LABELS = ("email", "name", "birth date")


def _synthetic_table(index: int) -> AnnotatedTable:
    """One deterministic annotated table; everything derives from ``index``."""
    table_id = f"bench-{index:05d}"
    n_cols = 3 + index % 5
    n_rows = 1 + (index * 7) % 40
    header = [f"col_{position}" for position in range(n_cols)]
    rows = [
        [
            str((index + row_index * position) % 97)
            if position % 3 != 2
            else f"v{(index + row_index) % 13}"
            for position in range(n_cols)
        ]
        for row_index in range(n_rows)
    ]
    metadata = {"rank": index % 11}
    if index % 7 == 0:
        metadata["pii_scrubbed_types"] = {
            header[0]: _PII_LABELS[index % len(_PII_LABELS)],
        }
    annotations = TableAnnotations(table_id=table_id)
    for position in range(0, n_cols, 2):
        label = _TYPE_LABELS[(index + position) % len(_TYPE_LABELS)]
        annotations.add(
            ColumnAnnotation(
                column=header[position],
                type_label=label,
                ontology="dbpedia" if position % 4 == 0 else "schema_org",
                method=AnnotationMethod.SYNTACTIC if index % 2 else AnnotationMethod.SEMANTIC,
                confidence=0.5 + ((index + position) % 50) / 100.0,
            )
        )
        if index % 3 == 0:
            annotations.add(
                ColumnAnnotation(
                    column=header[position],
                    type_label=label,
                    ontology="schema_org",
                    method=AnnotationMethod.SEMANTIC,
                    confidence=0.6 + ((index * position) % 40) / 100.0,
                )
            )
    return AnnotatedTable(
        table=Table(header, rows, table_id=table_id, metadata=metadata),
        annotations=annotations,
        topic=_TOPICS[index % len(_TOPICS)],
        repository=f"org{index % 37}/repo{index % 113}",
        source_url=f"https://github.com/bench/{table_id}.csv",
        license_key=_LICENSES[index % len(_LICENSES)],
    )


def _full_surface_scan(corpus) -> tuple:
    """The whole statistics surface through the streaming references."""
    corpus_stats = CorpusStatistics.from_scan(corpus)
    annotation_stats = AnnotationStatistics.from_scan(corpus)
    curation = CurationReport.from_scan(corpus)
    cdfs = tuple(dimension_cdf(corpus, axis=axis) for axis in ("rows", "columns"))
    tops = tuple(
        tuple(top_types(annotation_stats, method, ontology, k=25))
        for method in ("syntactic", "semantic")
        for ontology in ("dbpedia", "schema_org")
    )
    return corpus_stats, annotation_stats, curation, cdfs, tops


def _full_surface_columnar(session) -> tuple:
    """The same surface through the columnar engine (arrays only)."""
    corpus_stats = session.stats()
    annotation_stats = session.annotation_stats()
    curation = CurationReport.from_corpus(session.corpus)
    cdfs = tuple(dimension_cdf(session.corpus, axis=axis) for axis in ("rows", "columns"))
    tops = tuple(
        tuple(top_types(annotation_stats, method, ontology, k=25))
        for method in ("syntactic", "semantic")
        for ontology in ("dbpedia", "schema_org")
    )
    return corpus_stats, annotation_stats, curation, cdfs, tops


def run_stats_benchmark(n_tables: int = N_TABLES, shard_size: int = SHARD_SIZE) -> dict:
    """Time scan vs columnar over a freshly built sharded corpus."""
    corpus = GitTablesCorpus(name="bench-stats")
    for index in range(n_tables):
        corpus.add(_synthetic_table(index))

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        corpus.save(store_dir, shard_size=shard_size)

        # One-time projection build + publish (amortized across sessions).
        started = perf_counter()
        on_disk = GitTablesCorpus.load(store_dir)
        projection = ColumnarProjection.from_corpus(on_disk)
        publish_projection(
            IndexArtifactStore.for_corpus_dir(store_dir),
            projection,
            corpus_fingerprint=corpus_content_fingerprint(on_disk),
        )
        build_publish_seconds = perf_counter() - started

        # Scan arm: cold load, stream every table out of the shards.
        started = perf_counter()
        scan_corpus = GitTablesCorpus.load(store_dir)
        scan_results = _full_surface_scan(scan_corpus)
        scan_seconds = perf_counter() - started

        # Columnar arm: cold load, mmap the projection, read arrays.
        started = perf_counter()
        session = GitTables.load(store_dir)
        columnar_results = _full_surface_columnar(session)
        columnar_seconds = perf_counter() - started

    return {
        "n_tables": n_tables,
        "n_columns": projection.column_count,
        "n_annotations": projection.annotation_count,
        "shard_size": shard_size,
        "build_publish_seconds": build_publish_seconds,
        "scan_seconds": scan_seconds,
        "columnar_seconds": columnar_seconds,
        "speedup": scan_seconds / columnar_seconds,
        "results_equal": columnar_results == scan_results,
    }


@pytest.mark.slow
def test_columnar_stats_speedup():
    result = run_stats_benchmark()
    print(
        f"\nstats surface over {result['n_tables']} tables "
        f"({result['n_columns']} columns, {result['n_annotations']} annotations): "
        f"scan {result['scan_seconds']:.3f}s | "
        f"columnar {result['columnar_seconds']:.3f}s | "
        f"speedup {result['speedup']:.1f}x | "
        f"one-time build+publish {result['build_publish_seconds']:.3f}s"
    )
    assert result["results_equal"], "columnar statistics differ from the streaming scan"
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"columnar speedup {result['speedup']:.1f}x below the {MIN_SPEEDUP}x gate"
    )
