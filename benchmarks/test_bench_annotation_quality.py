"""Benchmark E16 — §4.3: annotation quality on the T2Dv2 gold standard."""

from __future__ import annotations

from repro.experiments.annotation_quality import run_annotation_quality
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_annotation_quality(benchmark, bench_context):
    result = benchmark.pedantic(run_annotation_quality, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    syntactic = result.row_by(method="syntactic")
    semantic = result.row_by(method="semantic")
    # Paper shape: agreement with the published gold labels is moderate
    # (54%/61%), the semantic method covers more columns than the
    # syntactic one, and many disagreements are granularity mismatches
    # where our annotation matches the finer true type.
    assert 0.4 <= syntactic["agreement_with_gold"] <= 0.9
    assert 0.4 <= semantic["agreement_with_gold"] <= 0.9
    assert semantic["columns_evaluated"] >= syntactic["columns_evaluated"]
    assert semantic["agreement_with_fine_type"] >= semantic["agreement_with_gold"]
    assert syntactic["finer_than_gold"] > 0
