"""Benchmark: online compaction under a live serving worker pool.

Builds a sharded store through the real pipeline (warmed, published
index artifacts), serves it with a process worker pool, and re-shards
it **while the pool keeps answering**:

* **steady window** — blocking searches against the untouched store,
  giving the baseline QPS;
* **compaction window** — the same query loop, with
  :func:`repro.storage.compaction.compact_store` rewriting the
  directory to a coarser shard size in a separate compactor process
  (how an operator runs it against a live service); the window runs
  from the moment the rewrite starts until every reporting worker has
  hot-reloaded the new layout generation.

The acceptance gates: QPS during compaction stays within
``MIN_QPS_RATIO`` of steady state, every response in both windows is
bit-identical to the single-shot answer, the store's
``content_fingerprint`` is unchanged by the re-shard (the zero
re-embedding guarantee), and the pool settles on the new generation.

``scripts/bench.py --suite compaction`` reuses these helpers to write
the ``BENCH_compaction.json`` perf baseline. The pytest wrapper is
marked ``slow`` and therefore excluded from the tier-1 run (see
``[tool.pytest.ini_options]`` in pyproject.toml).
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.api import GitTables
from repro.config import PipelineConfig
from repro.github.content import GeneratorConfig
from repro.storage.compaction import compact_store
from repro.storage.parallel import build_mp_context
from repro.storage.sharded import ShardedJsonlStore

N_TABLES = 1000
SHARD_SIZE = 32
COMPACT_SHARD_SIZE = 128
WORKERS = 2
#: Seconds of blocking queries per measured window. Long enough to
#: amortize the compactor's CPU burst even on a single shared core.
WINDOW_SECONDS = 4.0
#: QPS during compaction must stay within this fraction of steady state.
MIN_QPS_RATIO = 0.8
#: Hard cap on waiting for the pool to settle on the new generation.
SETTLE_TIMEOUT_SECONDS = 60.0

_QUERIES = (
    "status and sales amount per product",
    "sensor readings by day",
    "population by country",
)


def _query_window(service, expected, duration: float, until=None, tick=None) -> tuple:
    """Blocking searches round-robin for ``duration`` seconds.

    With ``until`` the window keeps going (up to the settle timeout)
    until the predicate holds, so the compaction window always spans
    the full swap *and* every worker's reload; ``tick`` (a cheap
    callback, e.g. a child-liveness probe) runs every iteration.
    Returns ``(completed, elapsed_seconds, all_equal)``.
    """
    completed = 0
    equal = True
    index = 0
    started = perf_counter()
    while True:
        if tick is not None:
            tick()
        elapsed = perf_counter() - started
        if elapsed >= duration and (until is None or until()):
            break
        if until is not None and elapsed >= SETTLE_TIMEOUT_SECONDS:
            break
        query = _QUERIES[index % len(_QUERIES)]
        index += 1
        equal = service.search(query, k=10) == expected[query] and equal
        completed += 1
    return completed, perf_counter() - started, equal


def run_compaction_benchmark(
    n_tables: int = N_TABLES,
    shard_size: int = SHARD_SIZE,
    compact_shard_size: int = COMPACT_SHARD_SIZE,
) -> dict:
    """Measure serving QPS with and without a concurrent re-shard."""
    config = PipelineConfig(target_tables=n_tables, seed=13)
    generator = GeneratorConfig(seed=13).scaled_to_files(n_tables * 8)

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "store"
        started = perf_counter()
        session = GitTables.build(
            config, generator_config=generator, store_dir=directory, shard_size=shard_size
        )
        _ = session.search_engine
        _ = session.completer
        build_seconds = perf_counter() - started

        fingerprint = ShardedJsonlStore(directory).content_fingerprint()
        shards_before = len(ShardedJsonlStore(directory).shard_files())
        expected = {query: session.search(query, k=10) for query in _QUERIES}

        serving = GitTables.load(directory)
        with serving.serve(workers=WORKERS, max_wait_ms=2.0) as service:
            _query_window(service, expected, 0.5)  # warm the pool
            steady_count, steady_elapsed, steady_equal = _query_window(
                service, expected, WINDOW_SECONDS
            )

            # The compactor runs as its own process — the operational
            # shape (an admin task against a live service), and the only
            # fair one: an in-process compactor thread would fight the
            # dispatcher for the GIL and measure contention, not serving.
            box: dict = {}
            compact_started = perf_counter()
            compactor = build_mp_context().Process(
                target=compact_store,
                args=(str(directory),),
                kwargs={"shard_size": compact_shard_size},
                name="bench-compactor",
            )
            compactor.start()

            def _tick() -> None:
                if "seconds" not in box and not compactor.is_alive():
                    box["seconds"] = perf_counter() - compact_started

            def _settled() -> bool:
                if "seconds" not in box:
                    return False
                generations = service.metrics()["workers"]["generations"]
                return bool(generations) and all(
                    generation == 2 for generation in generations.values()
                )

            during_count, during_elapsed, during_equal = _query_window(
                service, expected, WINDOW_SECONDS, until=_settled, tick=_tick
            )
            settled = _settled()
            compactor.join()
            workers_after = service.metrics()["workers"]

        if compactor.exitcode != 0:
            raise RuntimeError(f"compactor exited with {compactor.exitcode}")
        store = ShardedJsonlStore(directory)
        fingerprints_equal = store.content_fingerprint() == fingerprint
        shards_after = len(store.shard_files())
        generation = store.generation

    steady_qps = steady_count / steady_elapsed
    during_qps = during_count / during_elapsed
    reloads = workers_after["artifact_reloads"]
    return {
        "n_tables": n_tables,
        "shard_size": shard_size,
        "compact_shard_size": compact_shard_size,
        "workers": WORKERS,
        "shards_before": shards_before,
        "shards_after": shards_after,
        "generation": generation,
        "build_seconds": build_seconds,
        "compact_seconds": box["seconds"],
        "steady_qps": steady_qps,
        "during_compaction_qps": during_qps,
        "qps_ratio": during_qps / steady_qps,
        "steady_requests": steady_count,
        "during_requests": during_count,
        "results_equal": steady_equal and during_equal,
        "fingerprints_equal": fingerprints_equal,
        "pool_settled_on_new_generation": settled,
        "workers_reloaded": bool(reloads) and all(count >= 1 for count in reloads.values()),
    }


@pytest.mark.slow
def test_online_compaction_serving_throughput():
    result = run_compaction_benchmark()
    print(
        f"\ncompaction {result['shards_before']} -> {result['shards_after']} shards "
        f"(generation {result['generation']}, {result['compact_seconds']:.2f}s rewrite): "
        f"steady {result['steady_qps']:.0f} QPS | "
        f"during {result['during_compaction_qps']:.0f} QPS | "
        f"ratio {result['qps_ratio']:.2f}"
    )
    assert result["generation"] == 2, "compaction did not publish a new generation"
    assert result["fingerprints_equal"], "compaction changed the content fingerprint"
    assert result["results_equal"], "served answers changed during the re-shard"
    assert result["pool_settled_on_new_generation"], "workers never reloaded the new layout"
    assert result["workers_reloaded"], "no worker reported a hot reload"
    assert result["qps_ratio"] >= MIN_QPS_RATIO, (
        f"QPS during compaction fell to {result['qps_ratio']:.2f}x of steady state "
        f"(gate {MIN_QPS_RATIO}x)"
    )
