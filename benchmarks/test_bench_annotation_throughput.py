"""Benchmark: batched annotation throughput vs the per-column path.

The tentpole measurement of the vectorized batch annotation engine: a
500-table synthetic corpus is annotated twice — once column by column
through ``annotate_column`` (the paper's original hot path: one embed
and one index query per column name per ontology) and once through
``AnnotationPipeline.annotate_batch`` (all column names collected,
deduplicated, and resolved with one batched index query per ontology).

The batched path must be at least 3x faster and produce *exactly* equal
results (bit-identical confidences), which the engine guarantees by
funnelling both paths through the same batch-size-invariant kernels.

``scripts/bench.py`` reuses these helpers to write the
``BENCH_annotation.json`` perf baseline.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.config import AnnotationConfig
from repro.core.annotation import AnnotationPipeline, TableAnnotations
from repro.dataframe.table import Table

N_TABLES = 500
MIN_SPEEDUP = 3.0

_BASE_NAMES = [
    "order id", "order date", "status", "quantity", "total price",
    "customer email", "first name", "last name", "birth date", "city",
    "country", "latitude", "longitude", "product id", "category",
    "description", "url", "phone", "company", "currency", "weight",
    "height", "team", "genre", "language", "species", "population",
    "address", "postal code", "username",
]
_PREFIXES = ["", "customer", "shipping", "billing", "primary", "source", "target"]
_SUFFIXES = ["", "code", "value", "name", "type"]


def synthetic_name_pool() -> list[str]:
    """A realistic pool of compound column names (~1000 distinct)."""
    pool = []
    for base in _BASE_NAMES:
        for prefix in _PREFIXES:
            for suffix in _SUFFIXES:
                name = "_".join(part for part in (prefix, base.replace(" ", "_"), suffix) if part)
                pool.append(name)
    return pool


def synthetic_tables(n_tables: int = N_TABLES, seed: int = 20230530) -> list[Table]:
    """A synthetic corpus of ``n_tables`` tables with 5-10 columns each."""
    rng = np.random.default_rng(seed)
    pool = synthetic_name_pool()
    tables = []
    for index in range(n_tables):
        n_columns = int(rng.integers(5, 11))
        header = [pool[i] for i in rng.choice(len(pool), size=n_columns, replace=False)]
        tables.append(
            Table(
                header=header,
                rows=[["x"] * n_columns],
                table_id=f"bench-{index}",
            )
        )
    return tables


def annotate_per_column(pipeline: AnnotationPipeline, tables: list[Table]) -> list[TableAnnotations]:
    """The pre-batching hot path: one resolution per column occurrence."""
    results = []
    for table in tables:
        annotations = TableAnnotations(table_id=table.table_id)
        for group in (pipeline.syntactic, pipeline.semantic):
            for annotator in group.values():
                for name in table.header:
                    annotation = annotator.annotate_column(name)
                    if annotation is not None:
                        annotations.add(annotation)
        results.append(annotations)
    return results


def _best_of(fn, repeats: int = 2):
    """(best wall-clock seconds, last result) over ``repeats`` runs.

    The best-of timing absorbs one-off process noise (GC pressure from a
    long test session, first-touch page faults); both paths get the same
    treatment, so the second run of each sees its own warm caches.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = perf_counter()
        result = fn()
        best = min(best, perf_counter() - started)
    return best, result


def run_throughput_comparison(n_tables: int = N_TABLES, seed: int = 20230530) -> dict:
    """Time per-column vs batched annotation on a fresh synthetic corpus.

    Each path gets its own freshly built pipeline so neither benefits
    from the other's embedding caches; pipeline construction (ontology
    label embedding) stays outside the timed sections.
    """
    tables = synthetic_tables(n_tables, seed=seed)
    config = AnnotationConfig()
    per_column_pipeline = AnnotationPipeline(config)
    batched_pipeline = AnnotationPipeline(config)

    per_column_seconds, per_column_results = _best_of(
        lambda: annotate_per_column(per_column_pipeline, tables)
    )
    batched_seconds, batched_results = _best_of(
        lambda: batched_pipeline.annotate_batch(tables)
    )

    n_columns = sum(table.num_columns for table in tables)
    return {
        "n_tables": n_tables,
        "n_columns": n_columns,
        "unique_names": len({name for table in tables for name in table.header}),
        "per_column_seconds": per_column_seconds,
        "batched_seconds": batched_seconds,
        "speedup": per_column_seconds / batched_seconds if batched_seconds else float("inf"),
        "batched_columns_per_second": n_columns / batched_seconds if batched_seconds else 0.0,
        "results_equal": batched_results == per_column_results,
    }


@pytest.mark.slow
def test_bench_annotation_throughput(benchmark):
    # Marked slow: the ≥3x timing assertion is load-sensitive (a busy
    # machine or a warm lru_cache for the baseline path can flake it),
    # so it runs with the heavy benchmarks (`pytest -m slow`) and via
    # scripts/bench.py, not in tier-1.
    tables = synthetic_tables(N_TABLES)
    config = AnnotationConfig()
    per_column_pipeline = AnnotationPipeline(config)
    batched_pipeline = AnnotationPipeline(config)

    per_column_seconds, per_column_results = _best_of(
        lambda: annotate_per_column(per_column_pipeline, tables)
    )

    batched_results = benchmark.pedantic(
        batched_pipeline.annotate_batch, args=(tables,), rounds=2, iterations=1
    )
    batched_seconds = benchmark.stats.stats.min

    n_columns = sum(table.num_columns for table in tables)
    speedup = per_column_seconds / batched_seconds if batched_seconds else float("inf")
    print(
        f"\nannotated {N_TABLES} tables / {n_columns} columns: "
        f"per-column {per_column_seconds:.3f}s, batched {batched_seconds:.3f}s "
        f"({speedup:.1f}x, {n_columns / batched_seconds:.0f} cols/sec batched)"
    )

    # Exactly equal — same labels, same bit-identical confidences.
    assert batched_results == per_column_results
    assert speedup >= MIN_SPEEDUP
