"""Benchmark E8 — Table 8: schema completion for CTU prefixes."""

from __future__ import annotations

from repro.experiments.registry import format_result
from repro.experiments.schema_completion import run_table8

SCALE = "default"


def test_bench_table8(benchmark, bench_context):
    result = benchmark.pedantic(run_table8, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    average = result.row_by(header_prefix="(average)")
    employees = result.row_by(header_prefix="emp_no, birth_date, first_name")
    # Paper shape: completions are relevant, with full-schema cosine
    # similarities averaging around 0.5 on a [-1, 1] scale.
    assert average["cosine_similarity"] > 0.2
    assert employees["cosine_similarity"] > 0.3
    assert all(-1.0 <= row["cosine_similarity"] <= 1.0 for row in result.rows)
