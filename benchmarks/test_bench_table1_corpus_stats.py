"""Benchmark E1 — Table 1: corpus comparison (tables, avg rows, avg cols)."""

from __future__ import annotations

from repro.experiments.corpus_stats import run_table1
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_table1(benchmark, bench_context):
    result = benchmark.pedantic(run_table1, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    git = result.row_by(name="GitTables (reproduced)")
    viz = result.row_by(name="VizNet (simulated)")
    # Paper shape: GitTables tables are far larger than Web tables.
    assert git["avg_rows"] > 3 * viz["avg_rows"]
    assert git["avg_cols"] > 1.5 * viz["avg_cols"]
