"""Benchmark E15 — §4.2: data-shift domain classifier (paper: 93% accuracy)."""

from __future__ import annotations

from repro.experiments.domain_shift import run_domain_shift
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_domain_shift(benchmark, bench_context):
    result = benchmark.pedantic(run_domain_shift, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    row = result.rows[0]
    # Paper shape: the domain classifier separates GitTables columns from
    # VizNet columns far above chance.
    assert row["mean_accuracy"] > 0.75
    assert row["std_accuracy"] < 0.2
