"""Ablation A1: semantic-annotation similarity threshold.

The paper lets users pick a similarity threshold to trade annotation
coverage against confidence (§3.4). This ablation sweeps the threshold
and reports the resulting column coverage, reproducing the trade-off
curve behind Figure 4b/4c.
"""

from __future__ import annotations

from repro.core.annotation import SemanticAnnotator
from repro.embeddings.fasttext import FastTextModel
from repro.ontology.dbpedia import load_dbpedia

SCALE = "default"
THRESHOLDS = (0.3, 0.5, 0.7, 0.9)


def test_bench_ablation_similarity_threshold(benchmark, bench_context):
    corpus_tables = [annotated.table for annotated in list(bench_context.gittables)[:80]]
    ontology = load_dbpedia()
    model = FastTextModel()

    def sweep() -> dict[float, float]:
        coverages: dict[float, float] = {}
        for threshold in THRESHOLDS:
            annotator = SemanticAnnotator(ontology, model=model, similarity_threshold=threshold)
            annotated_columns = 0
            total_columns = 0
            for table in corpus_tables:
                total_columns += table.num_columns
                annotated_columns += len(annotator.annotate(table))
            coverages[threshold] = annotated_columns / max(total_columns, 1)
        return coverages

    coverages = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nthreshold -> column coverage")
    for threshold, coverage in coverages.items():
        print(f"  {threshold:.1f} -> {coverage:.3f}")
    # Coverage must decrease monotonically as the threshold rises, and the
    # strictest setting must still annotate the exact-match columns.
    values = [coverages[threshold] for threshold in THRESHOLDS]
    assert all(earlier >= later for earlier, later in zip(values, values[1:]))
    assert values[-1] > 0.0
