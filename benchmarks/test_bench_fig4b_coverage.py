"""Benchmark E10 — Figure 4b: annotated-column coverage per table."""

from __future__ import annotations

from repro.experiments.annotation_stats import run_fig4b
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_fig4b(benchmark, bench_context):
    result = benchmark.pedantic(run_fig4b, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    summary = result.row_by(method="mean coverage")
    syntactic_mean, semantic_mean = summary["coverage_bin_low_pct"], summary["coverage_bin_high_pct"]
    # Paper shape: semantic coverage (71%) well above syntactic (26%).
    assert semantic_mean > syntactic_mean
    assert semantic_mean > 40.0
    assert syntactic_mean < 60.0
