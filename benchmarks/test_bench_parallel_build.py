"""Benchmark: process-parallel corpus builds vs the serial writer.

Builds the 500-table benchmark corpus twice from one shared synthetic
GitHub instance — once through the single-process streaming writer, once
through :class:`~repro.storage.parallel.ParallelCorpusBuilder` with 4
worker processes — and asserts the parallel directory is byte-identical
to the serial one while finishing at least ``MIN_SPEEDUP``× faster.

**What the clock measures.** The production workload this models is
network-bound: the paper's extraction is paced by the GitHub Search
API's 30-requests/minute budget, so a real build spends most of its
wall-clock waiting on the API, and process-parallelism wins by
overlapping those waits (one rate-budget/token per worker) with each
other and with CPU work. The simulator normally runs that pacing on a
pure virtual clock; here ``REAL_TIME_FACTOR`` converts each request's
virtual time (latency + rate-limit wait) into a real ``time.sleep`` —
scaled down so the suite stays runnable — for **both** arms, giving the
serial baseline and the parallel build identical per-request costs.
``cpu_count`` is recorded in the baseline: on a single-core runner
(like the committed baseline's) the entire speedup is I/O-wait overlap;
with ≥4 cores the parse/annotate CPU overlaps too and the speedup
grows.

``scripts/bench.py --suite parallel_build`` reuses these helpers to
write the ``BENCH_parallel_build.json`` perf baseline. The pytest
wrapper is marked ``slow`` and therefore excluded from the tier-1 run.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.config import ExtractionConfig, PipelineConfig
from repro.core.pipeline import CorpusBuilder
from repro.github.content import GeneratorConfig
from repro.github.instance import build_instance
from repro.storage._io import directory_file_bytes as _dir_bytes
from repro.storage.parallel import ParallelCorpusBuilder

N_TABLES = 500
PROCESSES = 4
SHARD_SIZE = 64
#: Real seconds slept per virtual second of simulated GitHub API time
#: (latency + rate-limit waits). 0.01 ≈ a 100× time-compressed API.
REAL_TIME_FACTOR = 0.01
#: Acceptance floor: 4 processes must at least halve the wall-clock.
MIN_SPEEDUP = 2.0




def run_parallel_build_benchmark(
    n_tables: int = N_TABLES,
    processes: int = PROCESSES,
    real_time_factor: float = REAL_TIME_FACTOR,
    seed: int = 13,
) -> dict:
    """Time a serial vs a ``processes``-way build of the same corpus."""
    config = PipelineConfig(
        extraction=ExtractionConfig(topic_count=40),
        target_tables=n_tables,
        seed=seed,
    )
    generator = GeneratorConfig(seed=seed).scaled_to_files(n_tables * 8)
    # One shared instance: both arms extract from identical data, and
    # the (substantial) synthetic-GitHub generation cost stays out of
    # both measurements.
    instance = build_instance(generator)

    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = Path(tmp) / "serial"
        parallel_dir = Path(tmp) / "parallel"

        serial_builder = CorpusBuilder(
            config=config, instance=instance, real_time_factor=real_time_factor
        )
        started = perf_counter()
        serial_result = serial_builder.build(store_dir=serial_dir, shard_size=SHARD_SIZE)
        serial_seconds = perf_counter() - started

        parallel_builder = CorpusBuilder(
            config=config, instance=instance, real_time_factor=real_time_factor
        )
        started = perf_counter()
        parallel_result = ParallelCorpusBuilder(parallel_builder, processes=processes).build(
            parallel_dir, shard_size=SHARD_SIZE
        )
        parallel_seconds = perf_counter() - started

        byte_identical = _dir_bytes(serial_dir) == _dir_bytes(parallel_dir)
        n_serial = len(serial_result.corpus)
        n_parallel = len(parallel_result.corpus)

    return {
        "n_tables": n_serial,
        "n_parallel_tables": n_parallel,
        "processes": processes,
        "shard_size": SHARD_SIZE,
        "real_time_factor": real_time_factor,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds else 0.0,
        "serial_tables_per_second": n_serial / serial_seconds if serial_seconds else 0.0,
        "parallel_tables_per_second": (
            n_parallel / parallel_seconds if parallel_seconds else 0.0
        ),
        "byte_identical": byte_identical,
    }


@pytest.mark.slow
def test_bench_parallel_build(benchmark):
    result = benchmark.pedantic(
        run_parallel_build_benchmark, rounds=1, iterations=1
    )
    print(
        f"\nserial {result['serial_seconds']:.1f}s vs "
        f"{result['processes']}-process {result['parallel_seconds']:.1f}s "
        f"over {result['n_tables']} tables -> speedup {result['speedup']:.2f}x "
        f"(real_time_factor={result['real_time_factor']}, "
        f"{result['cpu_count']} CPU); byte_identical={result['byte_identical']}"
    )
    assert result["byte_identical"]
    assert result["n_tables"] == result["n_parallel_tables"] == N_TABLES
    assert result["speedup"] >= MIN_SPEEDUP
