"""Benchmark: end-to-end corpus construction (paper §3, Figure 1).

Times the full pipeline — extraction, parsing, filtering, annotation and
curation — at a reduced scale, and reports the per-stage statistics the
paper quotes (parse success rate, filter rate, PII fraction).
"""

from __future__ import annotations

from repro.config import PipelineConfig
from repro.core.pipeline import build_corpus
from repro.github.content import GeneratorConfig


def test_bench_pipeline_build(benchmark):
    config = PipelineConfig(target_tables=100, seed=123)
    generator = GeneratorConfig(n_repositories=200, mean_rows=60, mean_cols=10, seed=123)

    result = benchmark.pedantic(
        build_corpus, kwargs={"config": config, "generator_config": generator}, rounds=1, iterations=1
    )

    print(f"\ntables built: {len(result.corpus)}")
    print(f"parse success rate: {result.parsing_report.success_rate:.3f} (paper: 0.993)")
    print(
        "curation filter rate (excl. license): "
        f"{result.filter_report.drop_rate_excluding_license():.3f} (paper: ~0.09)"
    )
    print(
        "PII column fraction: "
        f"{result.curation_report.scrubbed_column_fraction:.4f} (paper: 0.003)"
    )
    assert len(result.corpus) > 0
    assert result.parsing_report.success_rate > 0.9
