"""Benchmark: flat exact search vs the partitioned probe-then-rerank tier.

Measures the approximate nearest-neighbour tier (``repro.embeddings.ann``)
on a synthetic clustered corpus — unit-norm cluster centres plus small
gaussian noise, the regime the IVF layout is built for:

* **flat** — ``NearestNeighbourIndex.top_k_batch`` scoring every query
  against every row (the exact pre-ANN behaviour),
* **partitioned** — ``PartitionedIndex.top_k_batch`` scoring queries
  against centroids, probing the ``nprobe`` nearest partitions and
  exact-reranking the gathered candidates with the same einsum kernel.

The headline numbers are ``speedup`` (flat batch seconds / partitioned
batch seconds) and ``recall_at_k`` (fraction of flat's top-k ids the
probe recovers, averaged over queries). Two exactness properties are
asserted alongside: every hit the tiers share carries a bit-identical
score, and with ``nprobe == n_partitions`` the partitioned tier returns
exactly the flat results.

``scripts/bench.py --suite ann`` reuses these helpers to write the
``BENCH_ann.json`` perf baseline. The pytest wrapper is marked ``slow``
and runs at a reduced scale.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.config import IndexConfig
from repro.embeddings import NearestNeighbourIndex, PartitionedIndex

N_ROWS = 50_000
DIM = 64
N_QUERIES = 512
TOP_K = 10
N_CLUSTERS = 256
#: Std-dev of the per-row gaussian noise around its cluster centre.
NOISE = 0.05
#: Required batch-query throughput improvement over the flat tier.
MIN_SPEEDUP = 5.0
#: Required recall@k against the exact flat top-k.
MIN_RECALL = 0.95


def make_clustered_corpus(
    n_rows: int, dim: int, n_clusters: int, noise: float, seed: int = 7
) -> np.ndarray:
    """Rows drawn around ``n_clusters`` random unit centres."""
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((n_clusters, dim))
    centres /= np.linalg.norm(centres, axis=1, keepdims=True)
    assignment = rng.integers(0, n_clusters, size=n_rows)
    return centres[assignment] + rng.standard_normal((n_rows, dim)) * noise


def _recall_at_k(exact: list, approximate: list, k: int) -> float:
    total = 0.0
    for exact_row, approx_row in zip(exact, approximate):
        truth = {label for label, _ in exact_row[:k]}
        found = {label for label, _ in approx_row[:k]}
        total += len(truth & found) / max(len(truth), 1)
    return total / max(len(exact), 1)


def _shared_hits_identical(exact: list, approximate: list) -> bool:
    """Every id both tiers return must carry a bit-identical score."""
    for exact_row, approx_row in zip(exact, approximate):
        exact_scores = dict(exact_row)
        for label, score in approx_row:
            if label in exact_scores and exact_scores[label] != score:
                return False
    return True


def run_ann_benchmark(
    n_rows: int = N_ROWS,
    dim: int = DIM,
    n_queries: int = N_QUERIES,
    top_k: int = TOP_K,
    n_clusters: int = N_CLUSTERS,
    noise: float = NOISE,
    seed: int = 7,
) -> dict:
    """Time flat vs partitioned batch top-k over a clustered corpus."""
    vectors = make_clustered_corpus(n_rows, dim, n_clusters, noise, seed=seed)
    rng = np.random.default_rng(seed + 1)
    # Queries are perturbed corpus rows: near a cluster, not on it.
    picks = rng.integers(0, n_rows, size=n_queries)
    queries = vectors[picks] + rng.standard_normal((n_queries, dim)) * noise

    labels = list(range(n_rows))
    config = IndexConfig(min_rows=1)
    flat = NearestNeighbourIndex(labels, vectors)

    started = perf_counter()
    ann = PartitionedIndex.from_flat(flat, config)
    build_seconds = perf_counter() - started

    started = perf_counter()
    exact = flat.top_k_batch(queries, top_k=top_k)
    flat_seconds = perf_counter() - started

    started = perf_counter()
    approximate = ann.top_k_batch(queries, top_k=top_k)
    ann_seconds = perf_counter() - started
    # Snapshot before the full-probe check below inflates the counters.
    stats = ann.stats()

    # Exactness: nprobe == n_partitions must reproduce flat verbatim.
    full_probe = ann.top_k_batch(queries, top_k=top_k, nprobe=ann.n_partitions)
    return {
        "n_rows": n_rows,
        "dim": dim,
        "n_queries": n_queries,
        "top_k": top_k,
        "n_partitions": ann.n_partitions,
        "nprobe": ann.nprobe,
        "build_seconds": build_seconds,
        "flat_seconds": flat_seconds,
        "ann_seconds": ann_seconds,
        "speedup": flat_seconds / ann_seconds if ann_seconds else 0.0,
        "recall_at_k": _recall_at_k(exact, approximate, top_k),
        "holdout_recall": ann.recall["recall_at_k"] if ann.recall else None,
        "mean_candidate_fraction": stats["mean_candidate_fraction"],
        "shared_hits_identical": _shared_hits_identical(exact, approximate),
        "full_probe_equals_flat": full_probe == exact,
    }


@pytest.mark.slow
def test_bench_ann(benchmark):
    result = benchmark.pedantic(
        run_ann_benchmark,
        kwargs={"n_rows": 8_000, "n_queries": 128, "n_clusters": 64},
        rounds=1,
        iterations=1,
    )
    print(
        f"\n{result['n_queries']} queries x {result['n_rows']} rows: "
        f"flat {result['flat_seconds']:.3f}s vs partitioned "
        f"{result['ann_seconds']:.3f}s ({result['speedup']:.1f}x, "
        f"recall@{result['top_k']} {result['recall_at_k']:.3f}, "
        f"{result['n_partitions']} partitions / nprobe {result['nprobe']})"
    )
    assert result["shared_hits_identical"], "shared hits must score bit-identically"
    assert result["full_probe_equals_flat"], "full probe must equal the flat tier"
    assert result["recall_at_k"] >= MIN_RECALL
    # The reduced pytest scale keeps the wall-clock low; the throughput
    # gate is enforced at full scale by ``scripts/bench.py --suite ann``.
    assert result["speedup"] > 1.0
