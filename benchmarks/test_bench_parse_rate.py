"""Benchmark E17 — §3.3: CSV parse success rate (paper: 99.3%)."""

from __future__ import annotations

from repro.dataframe.io import table_to_csv
from repro.dataframe.parser import parse_csv

SCALE = "default"


def test_bench_parse_rate(benchmark, bench_context):
    """Report the pipeline's parse success rate and micro-benchmark the parser."""
    report = bench_context.pipeline_result.parsing_report
    print(
        f"\nparse success rate: {report.success_rate:.4f} "
        f"({report.parsed}/{report.attempted} files; paper: 0.993)"
    )
    assert report.success_rate > 0.95

    # Micro-benchmark: parse 50 corpus tables rendered back to CSV text.
    csv_texts = [table_to_csv(annotated.table) for annotated in list(bench_context.gittables)[:50]]

    def parse_sample() -> int:
        parsed = 0
        for text in csv_texts:
            parse_csv(text)
            parsed += 1
        return parsed

    parsed = benchmark(parse_sample)
    assert parsed == len(csv_texts)
