"""Benchmark: streaming stage-graph throughput (tables/sec, peak memory shape).

Baseline for future pipeline-performance PRs (parallel stages, sharded
corpora): end-to-end tables/sec through the Figure-1 stage graph, the
per-stage exclusive-time breakdown, and the peak number of result items
the runner materialized at once (bounded by ``batch_size`` — the
streaming guarantee a list-materializing pipeline would break).
"""

from __future__ import annotations

from repro.config import PipelineConfig
from repro.core.pipeline import build_corpus
from repro.github.content import GeneratorConfig

SCALE = "default"

BATCH_SIZE = 16
TARGET_TABLES = 120


def test_bench_pipeline_throughput(benchmark):
    config = PipelineConfig(target_tables=TARGET_TABLES, seed=321)
    generator = GeneratorConfig(n_repositories=260, mean_rows=50, mean_cols=9, seed=321)

    result = benchmark.pedantic(
        build_corpus,
        kwargs={"config": config, "generator_config": generator, "batch_size": BATCH_SIZE},
        rounds=1,
        iterations=1,
    )

    report = result.pipeline_report
    assert report is not None
    tables_per_second = (
        report.items_collected / report.total_seconds if report.total_seconds else 0.0
    )
    print(f"\ntables built: {report.items_collected} in {report.total_seconds:.2f}s "
          f"({tables_per_second:.1f} tables/sec)")
    print(f"batches: {report.batches} (batch_size={report.batch_size}, "
          f"peak materialized: {report.peak_batch_items})")
    for row in report.as_rows():
        print(f"  {row['stage']:>12}: {row['items_in']:>6} in, {row['items_out']:>6} out, "
              f"{row['seconds']:.3f}s")

    # Streaming guarantees the baseline must preserve:
    assert len(result.corpus) == TARGET_TABLES
    assert report.peak_batch_items <= BATCH_SIZE
    # No wasted annotation work past the corpus target.
    assert report.stage("annotation").items_in == TARGET_TABLES
    assert tables_per_second > 0.0
