"""Benchmark E11 — Figure 4c: cosine similarity of semantic annotations."""

from __future__ import annotations

from repro.experiments.annotation_stats import run_fig4c
from repro.experiments.registry import format_result

SCALE = "default"


def test_bench_fig4c(benchmark, bench_context):
    result = benchmark.pedantic(run_fig4c, args=(SCALE,), rounds=1, iterations=1)
    print("\n" + format_result(result))
    for ontology in ("dbpedia", "schema_org"):
        summary = result.row_by(ontology=f"{ontology} (summary)")
        mean_similarity = summary["similarity_bin_low"]
        fraction_at_one = summary["similarity_bin_high"]
        # Paper shape: a visible peak at similarity 1.0 (exact syntactic
        # resemblance) with the remaining mass at high-but-below-1 values.
        assert fraction_at_one > 0.1
        assert 0.5 <= mean_similarity <= 1.0
        assert summary["annotation_count"] > 0
