"""Example: concurrent micro-batched query serving over a saved store.

Demonstrates the serving layer (``repro.serving``) end to end:

* build a small corpus, save it to a sharded store, and reload it —
  the save also publishes the mmap'd index artifacts the serving
  workers resolve on startup;
* serve a burst of concurrent ``search`` requests through a 2-worker
  micro-batched :class:`~repro.serving.service.QueryService`, showing
  that the coalesced responses are byte-identical to single-shot calls;
* read the metrics snapshot: per-endpoint QPS, the batch-size
  histogram the coalescer produced, and p50/p95/p99 latency.

Run with::

    python examples/concurrent_serving.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import GitTables
from repro.experiments.context import get_context


def main() -> None:
    context = get_context(scale="small")
    print("Building GitTables corpus...")
    corpus = context.gittables
    print(f"  {len(corpus)} tables in the corpus")

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "corpus"
        print(f"\nSaving to a sharded store ({store_dir.name}/)...")
        GitTables.from_corpus(corpus).save(store_dir)
        session = GitTables.load(store_dir)

        queries = [
            "status and sales amount per product",
            "employee salary and hire date",
            "species isolated per country",
            "customer address and phone",
            "monthly revenue per region",
            "temperature sensor reading log",
        ]

        print("\n== Concurrent serving (2 workers, micro-batched) ==")
        with session.serve(workers=2, max_wait_ms=10.0) as service:
            print(f"  worker pids: {service.worker_pids()}")
            # Submit the whole burst up front; the batcher coalesces it.
            futures = [service.submit_search(query, k=3) for query in queries]
            for query, future in zip(queries, futures):
                results = future.result(timeout=120)
                top = results[0].schema[:5] if results else []
                print(f"  {query!r} -> {', '.join(top)}")
                assert results == session.search(query, k=3), "must be bit-identical"

            snapshot = service.metrics()

        stats = snapshot["endpoints"]["search"]
        latency = stats["latency_ms"]
        print("\n== Metrics snapshot ==")
        print(f"  completed: {stats['completed']}  (QPS {stats['qps']:.0f})")
        print(f"  batch-size histogram: {stats['batch_size_histogram']}")
        print(
            f"  latency p50 {latency['p50']:.1f}ms  "
            f"p95 {latency['p95']:.1f}ms  p99 {latency['p99']:.1f}ms"
        )
        workers = snapshot["workers"]
        print(f"  workers alive: {workers['alive']}/{workers['configured']}")

    print("\nAll served responses matched single-shot calls exactly.")


if __name__ == "__main__":
    main()
