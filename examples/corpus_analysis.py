"""Example: corpus analysis — regenerate the paper's §4 statistics.

Builds the corpus once (shared through the experiment context's
:class:`repro.GitTables` session) and prints the analysis-section
artefacts: the Table 1/4 comparisons, the Table 5 annotation statistics,
the Figure 4 distributions, the Figure 5 top types, the Table 6 bias
profile and the §4.2 domain-shift classifier accuracy.

Run with::

    python examples/corpus_analysis.py
"""

from __future__ import annotations

from repro.experiments.annotation_stats import run_fig4b, run_fig5, run_table5
from repro.experiments.content_bias import run_table6
from repro.experiments.corpus_stats import run_fig4a, run_table1, run_table4
from repro.experiments.domain_shift import run_domain_shift
from repro.experiments.registry import format_result

SCALE = "small"


def main() -> None:
    from repro.experiments.context import get_context

    print("Running corpus analysis experiments (small scale)...\n")
    session = get_context(scale=SCALE).session
    print(f"{session!r}\n{session.pipeline_report.summary()}\n")
    for driver in (run_table1, run_table4, run_table5, run_fig4a, run_fig4b, run_fig5,
                   run_table6, run_domain_shift):
        result = driver(SCALE)
        print(format_result(result))
        print()


if __name__ == "__main__":
    main()
