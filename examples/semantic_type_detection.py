"""Example: train a Sherlock-style semantic type detection model (paper §5.1).

Builds a GitTables session and a synthetic VizNet corpus, trains the MLP
type detector on columns annotated with the paper's five target types
(address, class, status, name, description), and reproduces the Table 7
comparison: within-corpus F1 (via :meth:`repro.GitTables.detect_types`)
versus cross-corpus transfer.

Run with::

    python examples/semantic_type_detection.py
"""

from __future__ import annotations

from repro.applications.type_detection import TypeDetectionExperiment
from repro.experiments.context import get_context


def main() -> None:
    context = get_context(scale="small")
    print("Building corpora (GitTables + simulated VizNet)...")
    gt = context.session
    viznet = context.viznet
    print(f"  GitTables: {len(gt)} tables, VizNet: {len(viznet)} tables")

    experiment = TypeDetectionExperiment(columns_per_type=40, epochs=20, n_splits=3)

    print("\nSampling labelled columns per corpus...")
    for corpus in (gt.corpus, viznet):
        data = experiment.sample_labelled_columns(corpus)
        per_type = {label: int((data.labels == label).sum()) for label in set(data.labels)}
        print(f"  {corpus.name}: {data.n_samples} columns {per_type}")

    print("\nOne-call within-corpus detection through the facade:")
    within = gt.detect_types(columns_per_type=40, epochs=20, n_splits=3)
    print(f"  GitTables macro F1 = {within.mean_f1:.2f} (+/- {within.std_f1:.2f})")

    print("\nRunning the full Table 7 experiment (this trains three models)...")
    for result in experiment.run_table7(gt.corpus, viznet):
        row = result.as_table7_row()
        print(
            f"  train on {row['train_corpus']:>9} / evaluate on {row['eval_corpus']:>9}: "
            f"macro F1 = {row['f1_macro']:.2f} (+/- {row['f1_std']:.2f})"
        )

    print(
        "\nPaper reference: GitTables->GitTables 0.86, VizNet->VizNet 0.77, "
        "VizNet->GitTables 0.66 — Web-table models do not transfer to "
        "database-like tables."
    )


if __name__ == "__main__":
    main()
