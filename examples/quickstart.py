"""Quickstart: build a small GitTables corpus and inspect it.

Runs the streaming construction pipeline (GitHub extraction → parsing →
filtering → annotation → curation) against the built-in GitHub simulator
through the :class:`repro.GitTables` facade, then prints the per-stage
pipeline report, corpus statistics and a sample annotated table,
mirroring the paper's Figure 2 snippet.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GitTables, PipelineConfig
from repro.core.annotation import AnnotationMethod
from repro.github.content import GeneratorConfig


def main() -> None:
    config = PipelineConfig.small(seed=7)
    generator = GeneratorConfig(n_repositories=250, mean_rows=60, mean_cols=10, seed=7)

    print("Building GitTables corpus (small configuration)...")
    gt = GitTables.build(config, generator_config=generator)
    result = gt.result

    print(f"\n{gt!r} from {len(gt.corpus.repositories())} repositories")
    print(f"Parse success rate: {result.parsing_report.success_rate:.1%} (paper: 99.3%)")
    print(f"Curation filter rate: {result.filter_report.drop_rate_excluding_license():.1%} (paper: ~9%)")
    print(f"PII columns anonymised: {result.curation_report.scrubbed_column_fraction:.2%} (paper: 0.3%)")

    print("\nStreaming stage report:")
    print(gt.pipeline_report.summary())

    stats = gt.stats()
    print(f"\nAverage table size: {stats.avg_rows:.0f} rows x {stats.avg_cols:.0f} columns")
    print(f"Atomic types: {stats.as_table4_rows()}")

    print("\nMean annotated-column coverage per method:")
    for method, coverage in gt.annotation_stats().mean_coverage.items():
        print(f"  {method:>9}: {coverage:.0%}")

    # Show one annotated table, Figure-2 style.
    sample = next(iter(gt.corpus))
    print(f"\nSample table {sample.table_id} (topic: {sample.topic})")
    print("  columns:", ", ".join(sample.table.header[:8]))
    print("  annotations (syntactic, DBpedia):")
    for annotation in sample.annotations.for_method(AnnotationMethod.SYNTACTIC, "dbpedia"):
        print(f"    {annotation.column!r} -> {annotation.type_label!r} (confidence {annotation.confidence:.2f})")
    print("  annotations (semantic, Schema.org):")
    for annotation in sample.annotations.for_method(AnnotationMethod.SEMANTIC, "schema_org")[:8]:
        print(f"    {annotation.column!r} -> {annotation.type_label!r} (confidence {annotation.confidence:.2f})")


if __name__ == "__main__":
    main()
