"""Example: schema completion and data search over GitTables (paper §5.2-5.3).

Demonstrates the two retrieval-style applications through the
:class:`repro.GitTables` facade — both share one embedding cache, so the
second application starts warm:

* ``complete_schema``/``evaluate_completion`` (Algorithm 1) suggests
  completions for the CTU schema prefixes of Table 8;
* ``search`` retrieves tables for natural-language queries such as the
  paper's "status and sales amount per product" (Figure 6b).

Run with::

    python examples/schema_completion_and_search.py
"""

from __future__ import annotations

from repro.benchdata.ctu import CTU_SCHEMAS
from repro.experiments.context import get_context


def main() -> None:
    context = get_context(scale="small")
    print("Building GitTables corpus...")
    gt = context.session
    print(f"  {len(gt)} tables available as completion/search candidates")

    print("\n== Schema completion (Algorithm 1, Table 8) ==")
    for schema in CTU_SCHEMAS:
        prefix = schema.prefix(3)
        evaluation = gt.evaluate_completion(schema.attributes, prefix_length=3, k=10)
        print(f"\n  target: {schema.database}.{schema.table}")
        print(f"  prefix: {', '.join(prefix)}")
        print(f"  best completion schema: {', '.join(evaluation.best_completion.schema[:6])}")
        print(f"  full-schema cosine similarity: {evaluation.best_schema_similarity:.2f} "
              "(paper reports ~0.44-0.53)")

    print("\n== Data search (Figure 6b) ==")
    queries = (
        "status and sales amount per product",
        "employee salary and hire date",
        "species isolated per country",
    )
    for query in queries:
        print(f"\n  query: {query!r}")
        for result in gt.search(query, k=3):
            print(f"    #{result.rank} (score {result.score:.2f}): {', '.join(result.schema[:7])}")


if __name__ == "__main__":
    main()
